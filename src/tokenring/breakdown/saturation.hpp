// Saturation scaling: find the schedulability boundary along a payload
// direction (paper Section 6.1, "saturated schedulable class").
//
// Given a base message set M and a monotone schedulability predicate
// (schedulable at scale a implies schedulable at every a' < a), the
// critical scale a* = sup { a : predicate(a * M) } is located by
// exponential bracketing plus bisection. The saturated set a* * M lies on
// the boundary; its utilization is one breakdown-utilization sample.
//
// Two predicate forms are supported:
//  * `SchedulablePredicate` takes a materialized message set. The search
//    scales the base into one reusable `ScaledWorkspace` buffer, so even
//    this form allocates only once per search instead of once per probe.
//  * `ScaleKernel` takes the scale factor directly. Protocol-specific
//    kernels (analysis/kernels.hpp) hoist everything scale-invariant —
//    priority order, TTRT selection, per-station visit counts, blocking —
//    out of the probe loop, which is where the Monte Carlo speedup comes
//    from. A kernel must return, for every scale, the same verdict as the
//    predicate it replaces; the bisection trajectory (and hence every
//    output bit) is then identical between the two forms.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "tokenring/msg/message_set.hpp"

namespace tokenring::breakdown {

/// A schedulability predicate over message sets (captures protocol params
/// and bandwidth). Must be monotone non-increasing in uniform payload
/// scaling.
using SchedulablePredicate = std::function<bool(const msg::MessageSet&)>;

/// A schedulability predicate in scale space: kernel(a) answers "is a * M
/// schedulable?" for the base set M it was built from. Same monotonicity
/// requirement as SchedulablePredicate.
using ScaleKernel = std::function<bool(double)>;

/// Builds a ScaleKernel for one base message set. Factories are shared
/// across Monte Carlo worker threads (one kernel per trial), so they must
/// be const-callable and thread-safe.
using ScaleKernelFactory = std::function<ScaleKernel(const msg::MessageSet&)>;

/// Reusable buffer for repeated payload scalings of one (or many) base
/// sets: `at_scale` overwrites the internal set in place, so a bracketing
/// + bisection search touches the allocator once instead of once per probe.
class ScaledWorkspace {
 public:
  /// Scaled copy of `base`, valid until the next at_scale call. Values are
  /// bit-identical to `base.scaled(factor)`.
  const msg::MessageSet& at_scale(const msg::MessageSet& base, double factor) {
    base.scaled_into(factor, buffer_);
    return buffer_;
  }

 private:
  msg::MessageSet buffer_;
};

/// Wrap a message-set predicate as a ScaleKernel over `base`, probing
/// through `workspace`. Both referents must outlive the kernel.
ScaleKernel kernel_over_workspace(const msg::MessageSet& base,
                                  const SchedulablePredicate& predicate,
                                  ScaledWorkspace& workspace);

/// Options for the boundary search.
struct SaturationOptions {
  /// Relative tolerance on the critical scale.
  double relative_tolerance = 1e-6;
  /// Initial scale guess for bracketing.
  double initial_scale = 1.0;
  /// Abort bracketing above this scale (guards against predicates that
  /// never fail, e.g. zero-payload sets).
  double max_scale = 1e12;
};

/// Result of a saturation search.
struct SaturationResult {
  /// True iff a boundary exists: predicate holds somewhere in (0, max_scale]
  /// and fails at larger scales. False means either the set is
  /// unschedulable even as payloads vanish (degenerate_zero) or never
  /// becomes unschedulable below max_scale.
  bool found = false;
  /// Predicate fails even for the unscaled-to-zero set (fixed overheads
  /// alone exceed capacity): breakdown utilization is 0.
  bool degenerate_zero = false;
  /// The critical scale a* (lower bracket end; predicate holds here).
  double critical_scale = 0.0;
  /// Utilization of the saturated set at the given bandwidth.
  double breakdown_utilization = 0.0;
  /// How many times the predicate/kernel was evaluated (zero check +
  /// bracketing + bisection). Deterministic for a given base set and
  /// options — the probe sequence depends only on the verdicts — so the
  /// aggregate obs counter "breakdown.predicate_evals" is identical for
  /// every --jobs count.
  std::int64_t predicate_evals = 0;
};

/// Locate the critical scale for `base` under `kernel` (the scale-space
/// core; the predicate overload delegates here). `bw` is used only to
/// report utilization. Requires a non-empty base set with at least one
/// positive payload.
SaturationResult find_saturation_scaled(const msg::MessageSet& base,
                                        const ScaleKernel& kernel,
                                        BitsPerSecond bw,
                                        const SaturationOptions& options = {});

/// Locate the critical scale for `base` under `predicate`. Identical
/// results to find_saturation_scaled with an equivalent kernel.
SaturationResult find_saturation(const msg::MessageSet& base,
                                 const SchedulablePredicate& predicate,
                                 BitsPerSecond bw,
                                 const SaturationOptions& options = {});

/// A batch of independent scale kernels evaluated in lockstep: for every
/// lane l with active[l] != 0, set verdicts[l] to lane l's verdict at
/// scales[l] (entries of inactive lanes are left untouched). All spans
/// have one length, the lane count the kernel was built for. The concrete
/// SoA kernels live in analysis/kernels.hpp (PdpBatchKernel /
/// TtpBatchKernel); each lane must agree verdict-for-verdict with the
/// scalar kernel over the same base set.
using BatchScaleKernel =
    std::function<void(std::span<const double> scales,
                       std::span<const std::uint8_t> active,
                       std::span<std::uint8_t> verdicts)>;

/// Builds a BatchScaleKernel over one batch of base sets (one lane per
/// set). Shared across Monte Carlo worker threads — each call builds an
/// independent kernel, so the factory itself must be const-callable and
/// thread-safe.
using BatchScaleKernelFactory =
    std::function<BatchScaleKernel(std::span<const msg::MessageSet> bases)>;

/// Advances the exponential-bracket + bisection state of B independent
/// saturation searches in lockstep. Each pass the caller asks `prepare`
/// for one probe scale per still-searching lane, evaluates them all with
/// one BatchScaleKernel call, and feeds the verdicts back through
/// `absorb`. Per lane the probe sequence — zero check, bracketing walk,
/// bisection — replays `find_saturation_scaled` exactly (the sequence
/// depends only on the verdicts), so critical scales and per-lane
/// `predicate_evals` are bit-identical to B scalar searches; lanes that
/// converge early are masked out and simply stop consuming verdicts.
class BatchBisector {
 public:
  explicit BatchBisector(std::size_t lanes,
                         const SaturationOptions& options = {});

  std::size_t lanes() const { return lanes_.size(); }
  bool done() const { return live_ == 0; }
  std::size_t live_lanes() const { return live_; }

  /// Fill the next lockstep probe request: active[l] = 1 and scales[l] =
  /// the wanted probe for searching lanes; finished lanes get active[l] =
  /// 0 and keep their last probe scale (full-width kernels need a finite
  /// value). Spans must have size lanes().
  void prepare(std::span<double> scales, std::span<std::uint8_t> active) const;

  /// Consume the verdicts of the probes requested by the last prepare().
  /// Verdict entries of inactive lanes are ignored.
  void absorb(std::span<const std::uint8_t> verdicts);

  /// Result of one finished lane. `breakdown_utilization` is left 0 — the
  /// bisector never sees the base sets; find_saturation_batch fills it.
  /// Requires done().
  const SaturationResult& result(std::size_t lane) const;

 private:
  enum class State : std::uint8_t {
    kZeroCheck,     // awaiting the probe at scale 0
    kInitialProbe,  // awaiting the probe at options.initial_scale
    kBracketUp,     // awaiting probe(hi) while growing the bracket
    kBracketDown,   // awaiting probe(lo) while shrinking the bracket
    kBisect,        // awaiting probe(mid)
    kDone,
  };
  struct Lane {
    State state = State::kZeroCheck;
    double lo = 0.0;
    double hi = 0.0;
    double probe = 0.0;
    SaturationResult res;
  };

  void enter_bisection(Lane& lane);
  void finish(Lane& lane);

  SaturationOptions options_;
  std::vector<Lane> lanes_;
  std::size_t live_ = 0;
};

/// Locate the critical scale of every base set in one lockstep batch:
/// result[l] is bit-identical — every field, including predicate_evals —
/// to find_saturation_scaled(bases[l], <lane l's scalar kernel>, bw,
/// options). Requires one lane per base set, each non-empty with at least
/// one positive payload.
std::vector<SaturationResult> find_saturation_batch(
    std::span<const msg::MessageSet> bases, const BatchScaleKernel& kernel,
    BitsPerSecond bw, const SaturationOptions& options = {});

}  // namespace tokenring::breakdown
