// Saturation scaling: find the schedulability boundary along a payload
// direction (paper Section 6.1, "saturated schedulable class").
//
// Given a base message set M and a monotone schedulability predicate
// (schedulable at scale a implies schedulable at every a' < a), the
// critical scale a* = sup { a : predicate(a * M) } is located by
// exponential bracketing plus bisection. The saturated set a* * M lies on
// the boundary; its utilization is one breakdown-utilization sample.
//
// Two predicate forms are supported:
//  * `SchedulablePredicate` takes a materialized message set. The search
//    scales the base into one reusable `ScaledWorkspace` buffer, so even
//    this form allocates only once per search instead of once per probe.
//  * `ScaleKernel` takes the scale factor directly. Protocol-specific
//    kernels (analysis/kernels.hpp) hoist everything scale-invariant —
//    priority order, TTRT selection, per-station visit counts, blocking —
//    out of the probe loop, which is where the Monte Carlo speedup comes
//    from. A kernel must return, for every scale, the same verdict as the
//    predicate it replaces; the bisection trajectory (and hence every
//    output bit) is then identical between the two forms.

#pragma once

#include <cstdint>
#include <functional>

#include "tokenring/msg/message_set.hpp"

namespace tokenring::breakdown {

/// A schedulability predicate over message sets (captures protocol params
/// and bandwidth). Must be monotone non-increasing in uniform payload
/// scaling.
using SchedulablePredicate = std::function<bool(const msg::MessageSet&)>;

/// A schedulability predicate in scale space: kernel(a) answers "is a * M
/// schedulable?" for the base set M it was built from. Same monotonicity
/// requirement as SchedulablePredicate.
using ScaleKernel = std::function<bool(double)>;

/// Builds a ScaleKernel for one base message set. Factories are shared
/// across Monte Carlo worker threads (one kernel per trial), so they must
/// be const-callable and thread-safe.
using ScaleKernelFactory = std::function<ScaleKernel(const msg::MessageSet&)>;

/// Reusable buffer for repeated payload scalings of one (or many) base
/// sets: `at_scale` overwrites the internal set in place, so a bracketing
/// + bisection search touches the allocator once instead of once per probe.
class ScaledWorkspace {
 public:
  /// Scaled copy of `base`, valid until the next at_scale call. Values are
  /// bit-identical to `base.scaled(factor)`.
  const msg::MessageSet& at_scale(const msg::MessageSet& base, double factor) {
    base.scaled_into(factor, buffer_);
    return buffer_;
  }

 private:
  msg::MessageSet buffer_;
};

/// Wrap a message-set predicate as a ScaleKernel over `base`, probing
/// through `workspace`. Both referents must outlive the kernel.
ScaleKernel kernel_over_workspace(const msg::MessageSet& base,
                                  const SchedulablePredicate& predicate,
                                  ScaledWorkspace& workspace);

/// Options for the boundary search.
struct SaturationOptions {
  /// Relative tolerance on the critical scale.
  double relative_tolerance = 1e-6;
  /// Initial scale guess for bracketing.
  double initial_scale = 1.0;
  /// Abort bracketing above this scale (guards against predicates that
  /// never fail, e.g. zero-payload sets).
  double max_scale = 1e12;
};

/// Result of a saturation search.
struct SaturationResult {
  /// True iff a boundary exists: predicate holds somewhere in (0, max_scale]
  /// and fails at larger scales. False means either the set is
  /// unschedulable even as payloads vanish (degenerate_zero) or never
  /// becomes unschedulable below max_scale.
  bool found = false;
  /// Predicate fails even for the unscaled-to-zero set (fixed overheads
  /// alone exceed capacity): breakdown utilization is 0.
  bool degenerate_zero = false;
  /// The critical scale a* (lower bracket end; predicate holds here).
  double critical_scale = 0.0;
  /// Utilization of the saturated set at the given bandwidth.
  double breakdown_utilization = 0.0;
  /// How many times the predicate/kernel was evaluated (zero check +
  /// bracketing + bisection). Deterministic for a given base set and
  /// options — the probe sequence depends only on the verdicts — so the
  /// aggregate obs counter "breakdown.predicate_evals" is identical for
  /// every --jobs count.
  std::int64_t predicate_evals = 0;
};

/// Locate the critical scale for `base` under `kernel` (the scale-space
/// core; the predicate overload delegates here). `bw` is used only to
/// report utilization. Requires a non-empty base set with at least one
/// positive payload.
SaturationResult find_saturation_scaled(const msg::MessageSet& base,
                                        const ScaleKernel& kernel,
                                        BitsPerSecond bw,
                                        const SaturationOptions& options = {});

/// Locate the critical scale for `base` under `predicate`. Identical
/// results to find_saturation_scaled with an equivalent kernel.
SaturationResult find_saturation(const msg::MessageSet& base,
                                 const SchedulablePredicate& predicate,
                                 BitsPerSecond bw,
                                 const SaturationOptions& options = {});

}  // namespace tokenring::breakdown
