// Saturation scaling: find the schedulability boundary along a payload
// direction (paper Section 6.1, "saturated schedulable class").
//
// Given a base message set M and a monotone schedulability predicate
// (schedulable at scale a implies schedulable at every a' < a), the
// critical scale a* = sup { a : predicate(a * M) } is located by
// exponential bracketing plus bisection. The saturated set a* * M lies on
// the boundary; its utilization is one breakdown-utilization sample.

#pragma once

#include <functional>

#include "tokenring/msg/message_set.hpp"

namespace tokenring::breakdown {

/// A schedulability predicate over message sets (captures protocol params
/// and bandwidth). Must be monotone non-increasing in uniform payload
/// scaling.
using SchedulablePredicate = std::function<bool(const msg::MessageSet&)>;

/// Options for the boundary search.
struct SaturationOptions {
  /// Relative tolerance on the critical scale.
  double relative_tolerance = 1e-6;
  /// Initial scale guess for bracketing.
  double initial_scale = 1.0;
  /// Abort bracketing above this scale (guards against predicates that
  /// never fail, e.g. zero-payload sets).
  double max_scale = 1e12;
};

/// Result of a saturation search.
struct SaturationResult {
  /// True iff a boundary exists: predicate holds somewhere in (0, max_scale]
  /// and fails at larger scales. False means either the set is
  /// unschedulable even as payloads vanish (degenerate_zero) or never
  /// becomes unschedulable below max_scale.
  bool found = false;
  /// Predicate fails even for the unscaled-to-zero set (fixed overheads
  /// alone exceed capacity): breakdown utilization is 0.
  bool degenerate_zero = false;
  /// The critical scale a* (lower bracket end; predicate holds here).
  double critical_scale = 0.0;
  /// Utilization of the saturated set at the given bandwidth.
  double breakdown_utilization = 0.0;
};

/// Locate the critical scale for `base` under `predicate`.
/// `bw` is used only to report utilization. Requires a non-empty base set
/// with at least one positive payload.
SaturationResult find_saturation(const msg::MessageSet& base,
                                 const SchedulablePredicate& predicate,
                                 BitsPerSecond bw,
                                 const SaturationOptions& options = {});

}  // namespace tokenring::breakdown
