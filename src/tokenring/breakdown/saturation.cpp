#include "tokenring/breakdown/saturation.hpp"

#include <cmath>

#include "tokenring/common/checks.hpp"

namespace tokenring::breakdown {

SaturationResult find_saturation(const msg::MessageSet& base,
                                 const SchedulablePredicate& predicate,
                                 BitsPerSecond bw,
                                 const SaturationOptions& options) {
  TR_EXPECTS(!base.empty());
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(options.relative_tolerance > 0.0);
  TR_EXPECTS(options.initial_scale > 0.0);
  bool has_payload = false;
  for (const auto& s : base.streams()) has_payload |= s.payload_bits > 0.0;
  TR_EXPECTS_MSG(has_payload, "saturation needs a nonzero payload direction");

  SaturationResult res;

  // Degenerate check: if even (near-)zero payloads are unschedulable, the
  // breakdown utilization is 0 (fixed per-stream overheads exceed
  // capacity). Scale 0 keeps the overhead terms that depend on stream
  // existence (e.g. n * F_ovhd in Theorem 5.1) in place.
  if (!predicate(base.scaled(0.0))) {
    res.degenerate_zero = true;
    res.found = false;
    return res;
  }

  // Exponential bracketing: grow/shrink until lo passes and hi fails.
  double lo;
  double hi;
  if (predicate(base.scaled(options.initial_scale))) {
    lo = options.initial_scale;
    hi = lo * 2.0;
    while (predicate(base.scaled(hi))) {
      lo = hi;
      hi *= 2.0;
      if (hi > options.max_scale) {
        // Predicate never fails within bounds: report the bracket edge.
        res.found = false;
        res.critical_scale = lo;
        res.breakdown_utilization = base.scaled(lo).utilization(bw);
        return res;
      }
    }
  } else {
    hi = options.initial_scale;
    lo = hi / 2.0;
    while (!predicate(base.scaled(lo))) {
      hi = lo;
      lo /= 2.0;
      if (lo < options.initial_scale * 1e-18) {
        // Should have been caught by the zero check; be safe anyway.
        res.degenerate_zero = true;
        res.found = false;
        return res;
      }
    }
  }

  // Bisection: invariant predicate(lo) && !predicate(hi).
  while ((hi - lo) > options.relative_tolerance * hi) {
    const double mid = 0.5 * (lo + hi);
    if (predicate(base.scaled(mid))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  res.found = true;
  res.critical_scale = lo;
  res.breakdown_utilization = base.scaled(lo).utilization(bw);
  return res;
}

}  // namespace tokenring::breakdown
