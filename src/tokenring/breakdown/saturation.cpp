#include "tokenring/breakdown/saturation.hpp"

#include <cmath>

#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::breakdown {

namespace {

/// Utilization of base scaled by `factor`, bit-identical to
/// base.scaled(factor).utilization(bw): same multiply, same divides, same
/// accumulation order — without materializing the scaled set.
double scaled_utilization(const msg::MessageSet& base, double factor,
                          BitsPerSecond bw) {
  double u = 0.0;
  for (const auto& s : base.streams()) {
    const double payload = s.payload_bits * factor;
    u += (payload / bw) / s.period;
  }
  return u;
}

void count_evals(std::int64_t evals) {
  static const obs::Counter probes("breakdown.predicate_evals");
  probes.add(static_cast<std::uint64_t>(evals));
}

}  // namespace

ScaleKernel kernel_over_workspace(const msg::MessageSet& base,
                                  const SchedulablePredicate& predicate,
                                  ScaledWorkspace& workspace) {
  return [&base, &predicate, &workspace](double factor) {
    return predicate(workspace.at_scale(base, factor));
  };
}

SaturationResult find_saturation_scaled(const msg::MessageSet& base,
                                        const ScaleKernel& kernel,
                                        BitsPerSecond bw,
                                        const SaturationOptions& options) {
  TR_EXPECTS(!base.empty());
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(options.relative_tolerance > 0.0);
  TR_EXPECTS(options.initial_scale > 0.0);
  bool has_payload = false;
  for (const auto& s : base.streams()) has_payload |= s.payload_bits > 0.0;
  TR_EXPECTS_MSG(has_payload, "saturation needs a nonzero payload direction");

  SaturationResult res;
  const auto probe = [&](double factor) {
    ++res.predicate_evals;
    return kernel(factor);
  };

  // Degenerate check: if even (near-)zero payloads are unschedulable, the
  // breakdown utilization is 0 (fixed per-stream overheads exceed
  // capacity). Scale 0 keeps the overhead terms that depend on stream
  // existence (e.g. n * F_ovhd in Theorem 5.1) in place.
  if (!probe(0.0)) {
    res.degenerate_zero = true;
    res.found = false;
    count_evals(res.predicate_evals);
    return res;
  }

  // Exponential bracketing: grow/shrink until lo passes and hi fails.
  double lo;
  double hi;
  if (probe(options.initial_scale)) {
    lo = options.initial_scale;
    hi = lo * 2.0;
    while (probe(hi)) {
      lo = hi;
      hi *= 2.0;
      if (hi > options.max_scale) {
        // Predicate never fails within bounds: report the bracket edge.
        res.found = false;
        res.critical_scale = lo;
        res.breakdown_utilization = scaled_utilization(base, lo, bw);
        count_evals(res.predicate_evals);
        return res;
      }
    }
  } else {
    hi = options.initial_scale;
    lo = hi / 2.0;
    while (!probe(lo)) {
      hi = lo;
      lo /= 2.0;
      if (lo < options.initial_scale * 1e-18) {
        // Should have been caught by the zero check; be safe anyway.
        res.degenerate_zero = true;
        res.found = false;
        count_evals(res.predicate_evals);
        return res;
      }
    }
  }

  // Bisection: invariant predicate(lo) && !predicate(hi).
  while ((hi - lo) > options.relative_tolerance * hi) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  res.found = true;
  res.critical_scale = lo;
  res.breakdown_utilization = scaled_utilization(base, lo, bw);
  count_evals(res.predicate_evals);
  return res;
}

SaturationResult find_saturation(const msg::MessageSet& base,
                                 const SchedulablePredicate& predicate,
                                 BitsPerSecond bw,
                                 const SaturationOptions& options) {
  ScaledWorkspace workspace;
  return find_saturation_scaled(
      base, kernel_over_workspace(base, predicate, workspace), bw, options);
}

}  // namespace tokenring::breakdown
