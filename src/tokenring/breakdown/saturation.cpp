#include "tokenring/breakdown/saturation.hpp"

#include <cmath>

#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::breakdown {

namespace {

/// Utilization of base scaled by `factor`, bit-identical to
/// base.scaled(factor).utilization(bw): same multiply, same divides, same
/// accumulation order — without materializing the scaled set.
double scaled_utilization(const msg::MessageSet& base, double factor,
                          BitsPerSecond bw) {
  double u = 0.0;
  for (const auto& s : base.streams()) {
    const double payload = s.payload_bits * factor;
    u += (payload / bw) / s.period;
  }
  return u;
}

void count_evals(std::int64_t evals) {
  static const obs::Counter probes("breakdown.predicate_evals");
  probes.add(static_cast<std::uint64_t>(evals));
}

}  // namespace

ScaleKernel kernel_over_workspace(const msg::MessageSet& base,
                                  const SchedulablePredicate& predicate,
                                  ScaledWorkspace& workspace) {
  return [&base, &predicate, &workspace](double factor) {
    return predicate(workspace.at_scale(base, factor));
  };
}

SaturationResult find_saturation_scaled(const msg::MessageSet& base,
                                        const ScaleKernel& kernel,
                                        BitsPerSecond bw,
                                        const SaturationOptions& options) {
  TR_EXPECTS(!base.empty());
  TR_EXPECTS(bw > 0.0);
  TR_EXPECTS(options.relative_tolerance > 0.0);
  TR_EXPECTS(options.initial_scale > 0.0);
  bool has_payload = false;
  for (const auto& s : base.streams()) has_payload |= s.payload_bits > 0.0;
  TR_EXPECTS_MSG(has_payload, "saturation needs a nonzero payload direction");

  SaturationResult res;
  const auto probe = [&](double factor) {
    ++res.predicate_evals;
    return kernel(factor);
  };

  // Degenerate check: if even (near-)zero payloads are unschedulable, the
  // breakdown utilization is 0 (fixed per-stream overheads exceed
  // capacity). Scale 0 keeps the overhead terms that depend on stream
  // existence (e.g. n * F_ovhd in Theorem 5.1) in place.
  if (!probe(0.0)) {
    res.degenerate_zero = true;
    res.found = false;
    count_evals(res.predicate_evals);
    return res;
  }

  // Exponential bracketing: grow/shrink until lo passes and hi fails.
  double lo;
  double hi;
  if (probe(options.initial_scale)) {
    lo = options.initial_scale;
    hi = lo * 2.0;
    while (probe(hi)) {
      lo = hi;
      hi *= 2.0;
      if (hi > options.max_scale) {
        // Predicate never fails within bounds: report the bracket edge.
        res.found = false;
        res.critical_scale = lo;
        res.breakdown_utilization = scaled_utilization(base, lo, bw);
        count_evals(res.predicate_evals);
        return res;
      }
    }
  } else {
    hi = options.initial_scale;
    lo = hi / 2.0;
    while (!probe(lo)) {
      hi = lo;
      lo /= 2.0;
      if (lo < options.initial_scale * 1e-18) {
        // Should have been caught by the zero check; be safe anyway.
        res.degenerate_zero = true;
        res.found = false;
        count_evals(res.predicate_evals);
        return res;
      }
    }
  }

  // Bisection: invariant predicate(lo) && !predicate(hi).
  while ((hi - lo) > options.relative_tolerance * hi) {
    const double mid = 0.5 * (lo + hi);
    if (probe(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  res.found = true;
  res.critical_scale = lo;
  res.breakdown_utilization = scaled_utilization(base, lo, bw);
  count_evals(res.predicate_evals);
  return res;
}

SaturationResult find_saturation(const msg::MessageSet& base,
                                 const SchedulablePredicate& predicate,
                                 BitsPerSecond bw,
                                 const SaturationOptions& options) {
  ScaledWorkspace workspace;
  return find_saturation_scaled(
      base, kernel_over_workspace(base, predicate, workspace), bw, options);
}

BatchBisector::BatchBisector(std::size_t lanes, const SaturationOptions& options)
    : options_(options), lanes_(lanes), live_(lanes) {
  TR_EXPECTS(lanes >= 1);
  TR_EXPECTS(options.relative_tolerance > 0.0);
  TR_EXPECTS(options.initial_scale > 0.0);
  // Every lane starts by probing scale 0 (the degenerate check).
  for (Lane& lane : lanes_) lane.probe = 0.0;
}

void BatchBisector::prepare(std::span<double> scales,
                            std::span<std::uint8_t> active) const {
  TR_EXPECTS(scales.size() == lanes_.size());
  TR_EXPECTS(active.size() == lanes_.size());
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    scales[l] = lanes_[l].probe;
    active[l] = lanes_[l].state != State::kDone ? 1 : 0;
  }
}

void BatchBisector::finish(Lane& lane) {
  lane.state = State::kDone;
  --live_;
}

/// Bisection step shared by every entry path: either emit the next mid
/// probe or declare the bracket converged — the same check-before-probe
/// order as the scalar loop.
void BatchBisector::enter_bisection(Lane& lane) {
  if ((lane.hi - lane.lo) > options_.relative_tolerance * lane.hi) {
    lane.probe = 0.5 * (lane.lo + lane.hi);
    lane.state = State::kBisect;
  } else {
    lane.res.found = true;
    lane.res.critical_scale = lane.lo;
    finish(lane);
  }
}

void BatchBisector::absorb(std::span<const std::uint8_t> verdicts) {
  TR_EXPECTS(verdicts.size() == lanes_.size());
  for (std::size_t l = 0; l < lanes_.size(); ++l) {
    Lane& lane = lanes_[l];
    if (lane.state == State::kDone) continue;
    const bool ok = verdicts[l] != 0;
    ++lane.res.predicate_evals;
    switch (lane.state) {
      case State::kZeroCheck:
        if (!ok) {
          lane.res.degenerate_zero = true;
          lane.res.found = false;
          finish(lane);
        } else {
          lane.probe = options_.initial_scale;
          lane.state = State::kInitialProbe;
        }
        break;
      case State::kInitialProbe:
        if (ok) {
          lane.lo = options_.initial_scale;
          lane.hi = lane.lo * 2.0;
          lane.probe = lane.hi;
          lane.state = State::kBracketUp;
        } else {
          lane.hi = options_.initial_scale;
          lane.lo = lane.hi / 2.0;
          lane.probe = lane.lo;
          lane.state = State::kBracketDown;
        }
        break;
      case State::kBracketUp:  // verdict is probe(hi)
        if (ok) {
          lane.lo = lane.hi;
          lane.hi *= 2.0;
          if (lane.hi > options_.max_scale) {
            // Predicate never fails within bounds: report the bracket edge.
            lane.res.found = false;
            lane.res.critical_scale = lane.lo;
            finish(lane);
          } else {
            lane.probe = lane.hi;
          }
        } else {
          enter_bisection(lane);
        }
        break;
      case State::kBracketDown:  // verdict is probe(lo)
        if (!ok) {
          lane.hi = lane.lo;
          lane.lo /= 2.0;
          if (lane.lo < options_.initial_scale * 1e-18) {
            // Should have been caught by the zero check; be safe anyway.
            lane.res.degenerate_zero = true;
            lane.res.found = false;
            finish(lane);
          } else {
            lane.probe = lane.lo;
          }
        } else {
          enter_bisection(lane);
        }
        break;
      case State::kBisect:  // verdict is probe(mid)
        if (ok) {
          lane.lo = lane.probe;
        } else {
          lane.hi = lane.probe;
        }
        enter_bisection(lane);
        break;
      case State::kDone:
        break;
    }
  }
}

const SaturationResult& BatchBisector::result(std::size_t lane) const {
  TR_EXPECTS(lane < lanes_.size());
  TR_EXPECTS_MSG(lanes_[lane].state == State::kDone,
                 "lane result requested before the search finished");
  return lanes_[lane].res;
}

std::vector<SaturationResult> find_saturation_batch(
    std::span<const msg::MessageSet> bases, const BatchScaleKernel& kernel,
    BitsPerSecond bw, const SaturationOptions& options) {
  TR_EXPECTS(!bases.empty());
  TR_EXPECTS(bw > 0.0);
  for (const auto& base : bases) {
    TR_EXPECTS(!base.empty());
    bool has_payload = false;
    for (const auto& s : base.streams()) has_payload |= s.payload_bits > 0.0;
    TR_EXPECTS_MSG(has_payload,
                   "saturation needs a nonzero payload direction");
  }

  const std::size_t lanes = bases.size();
  BatchBisector bisector(lanes, options);
  std::vector<double> scales(lanes, 0.0);
  std::vector<std::uint8_t> active(lanes, 0);
  std::vector<std::uint8_t> verdicts(lanes, 0);
  while (!bisector.done()) {
    bisector.prepare(scales, active);
    kernel(scales, active, verdicts);
    bisector.absorb(verdicts);
  }

  std::vector<SaturationResult> results;
  results.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    SaturationResult res = bisector.result(l);
    // The bisector owns the trajectory; the utilization report needs the
    // base set. Same cases as the scalar path: found and unbounded report
    // the utilization at the bracket edge, degenerate stays 0.
    if (!res.degenerate_zero && (res.found || res.critical_scale > 0.0)) {
      res.breakdown_utilization =
          scaled_utilization(bases[l], res.critical_scale, bw);
    }
    count_evals(res.predicate_evals);
    results.push_back(res);
  }
  return results;
}

}  // namespace tokenring::breakdown
