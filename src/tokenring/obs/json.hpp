// Minimal JSON emission and validation for the observability layer.
//
// JsonWriter is a streaming writer with automatic comma/colon handling and
// optional pretty-printing; it backs the JSONL trace sink and the run
// manifest. is_valid_json is a strict structural validator used by tests
// to round-trip every emitted line without a third-party parser.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace tokenring::obs {

/// Escape a UTF-8 string for embedding between JSON double quotes: `"` and
/// `\` are backslash-escaped, control characters become \b \f \n \r \t or
/// \u00XX, and multi-byte UTF-8 sequences pass through unchanged.
std::string escape_json(std::string_view s);

/// Render a double as a JSON number token (shortest round-trip form).
/// Non-finite values have no JSON representation and render as null.
std::string json_number(double v);

/// Streaming JSON writer. Call begin_object/begin_array, key (inside
/// objects), and the value_* methods; commas and newlines are inserted
/// automatically. With indent == 0 the output is a single compact line
/// (JSONL); with indent > 0 nested containers are pretty-printed.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 0)
      : os_(os), indent_(indent) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emit the key of the next key/value pair; must be inside an object.
  JsonWriter& key(std::string_view k);

  void value_string(std::string_view v);
  void value_number(double v);
  void value_int(std::int64_t v);
  void value_uint(std::uint64_t v);
  void value_bool(bool v);
  void value_null();
  /// Emit a pre-rendered JSON token verbatim (caller guarantees validity).
  void value_raw(std::string_view token);

  /// Depth of open containers (0 when the document is complete).
  std::size_t depth() const { return stack_.size(); }

 private:
  struct Frame {
    bool array = false;
    std::size_t entries = 0;
  };

  /// Comma/indent bookkeeping before any value token.
  void before_value();
  void newline_indent(std::size_t depth);

  std::ostream& os_;
  int indent_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
};

/// True iff `text` is exactly one complete JSON value (with optional
/// surrounding whitespace). Strict: no trailing garbage, no unescaped
/// control characters in strings, numbers per RFC 8259.
bool is_valid_json(std::string_view text);

}  // namespace tokenring::obs
