// Minimal JSON emission and validation for the observability layer.
//
// JsonWriter is a streaming writer with automatic comma/colon handling and
// optional pretty-printing; it backs the JSONL trace sink and the run
// manifest. is_valid_json is a strict structural validator used by tests
// to round-trip every emitted line without a third-party parser.

#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tokenring::obs {

/// Escape a UTF-8 string for embedding between JSON double quotes: `"` and
/// `\` are backslash-escaped, control characters become \b \f \n \r \t or
/// \u00XX, and multi-byte UTF-8 sequences pass through unchanged.
std::string escape_json(std::string_view s);

/// Render a double as a JSON number token (shortest round-trip form).
/// Non-finite values have no JSON representation and render as null.
std::string json_number(double v);

/// Streaming JSON writer. Call begin_object/begin_array, key (inside
/// objects), and the value_* methods; commas and newlines are inserted
/// automatically. With indent == 0 the output is a single compact line
/// (JSONL); with indent > 0 nested containers are pretty-printed.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 0)
      : os_(os), indent_(indent) {}

  /// Strict mode, for wire formats where a silently degraded document is
  /// worse than a failed request: value_number with a non-finite value and
  /// value_raw with a token that is not itself valid JSON throw
  /// PreconditionError instead of emitting "null" / unvalidated bytes.
  /// (Strings are always safe: key/value_string escape every control
  /// character.) Off by default so manifest emission keeps rendering
  /// non-finite metrics as null.
  void set_strict(bool strict) { strict_ = strict; }
  bool strict() const { return strict_; }

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emit the key of the next key/value pair; must be inside an object.
  JsonWriter& key(std::string_view k);

  void value_string(std::string_view v);
  void value_number(double v);
  void value_int(std::int64_t v);
  void value_uint(std::uint64_t v);
  void value_bool(bool v);
  void value_null();
  /// Emit a pre-rendered JSON token verbatim (caller guarantees validity).
  void value_raw(std::string_view token);

  /// Depth of open containers (0 when the document is complete).
  std::size_t depth() const { return stack_.size(); }

 private:
  struct Frame {
    bool array = false;
    std::size_t entries = 0;
  };

  /// Comma/indent bookkeeping before any value token.
  void before_value();
  void newline_indent(std::size_t depth);

  std::ostream& os_;
  int indent_;
  std::vector<Frame> stack_;
  bool pending_key_ = false;
  bool strict_ = false;
};

/// Parsed JSON document node. Numbers keep their raw source token so
/// 64-bit integers (seeds) round-trip without passing through a double.
/// Accessors check the kind and throw PreconditionError on mismatch, so a
/// request handler reading the wrong shape fails with a message rather
/// than garbage.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const;
  double as_double() const;
  /// Integer value; requires a number whose token is integral and in
  /// range (no silent truncation of 1.5 or 2^64).
  std::int64_t as_int64() const;
  std::uint64_t as_uint64() const;
  /// Raw source token of a number ("1e-3", "42"), for exact round-trips.
  const std::string& number_token() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;       // array elements
  const std::vector<Member>& members() const;        // object members, in order
  /// Object member lookup (first match); nullptr when absent.
  const JsonValue* find(std::string_view key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool v);
  static JsonValue make_number(std::string token);
  static JsonValue make_string(std::string v);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::vector<Member> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string scalar_;              // number token or string payload
  std::vector<JsonValue> items_;    // array elements
  std::vector<Member> members_;     // object members
};

/// Outcome of parse_json / validate_json. On failure `error_offset` is the
/// byte offset into the input where parsing stopped — exactly what a
/// malformed-request 400 needs to point the client at its bug.
struct JsonParseResult {
  bool ok = false;
  JsonValue value;                  // valid only when ok
  std::size_t error_offset = 0;
  std::string error;                // short human-readable reason

  explicit operator bool() const { return ok; }
};

/// Parse exactly one complete JSON value (optional surrounding
/// whitespace, no trailing garbage). Same strictness as is_valid_json:
/// no raw control characters in strings, numbers per RFC 8259, bounded
/// nesting depth. \uXXXX escapes are decoded to UTF-8 (surrogate pairs
/// combined; an unpaired surrogate decodes to U+FFFD, matching the
/// validator's acceptance of any hex quad).
JsonParseResult parse_json(std::string_view text);

/// Validation without keeping the document: parse_json minus the value.
JsonParseResult validate_json(std::string_view text);

/// True iff `text` is exactly one complete JSON value (with optional
/// surrounding whitespace). Strict: no trailing garbage, no unescaped
/// control characters in strings, numbers per RFC 8259.
bool is_valid_json(std::string_view text);

}  // namespace tokenring::obs
