#include "tokenring/obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <system_error>
#include <utility>

#include "tokenring/common/checks.hpp"

namespace tokenring::obs {

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  std::string token(buf, res.ptr);
  // to_chars may emit bare "1e+30"-style tokens, which are valid JSON, but
  // never inf/nan (filtered above). Integral doubles render without a dot,
  // which JSON also accepts.
  return token;
}

void JsonWriter::newline_indent(std::size_t depth) {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < depth * static_cast<std::size_t>(indent_); ++i) {
    os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    TR_EXPECTS_MSG(stack_.back().array,
                   "JSON object members need key() before each value");
    if (stack_.back().entries++) os_ << ',';
    newline_indent(stack_.size());
  }
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame{false, 0});
}

void JsonWriter::end_object() {
  TR_EXPECTS(!stack_.empty() && !stack_.back().array && !pending_key_);
  const bool had_entries = stack_.back().entries > 0;
  stack_.pop_back();
  if (had_entries) newline_indent(stack_.size());
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame{true, 0});
}

void JsonWriter::end_array() {
  TR_EXPECTS(!stack_.empty() && stack_.back().array);
  const bool had_entries = stack_.back().entries > 0;
  stack_.pop_back();
  if (had_entries) newline_indent(stack_.size());
  os_ << ']';
}

JsonWriter& JsonWriter::key(std::string_view k) {
  TR_EXPECTS_MSG(!stack_.empty() && !stack_.back().array && !pending_key_,
                 "key() is only valid directly inside an object");
  if (stack_.back().entries++) os_ << ',';
  newline_indent(stack_.size());
  os_ << '"' << escape_json(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  pending_key_ = true;
  return *this;
}

void JsonWriter::value_string(std::string_view v) {
  before_value();
  os_ << '"' << escape_json(v) << '"';
}

void JsonWriter::value_number(double v) {
  TR_EXPECTS_MSG(!strict_ || std::isfinite(v),
                 "strict JSON writer rejects non-finite numbers");
  before_value();
  os_ << json_number(v);
}

void JsonWriter::value_int(std::int64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value_uint(std::uint64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value_bool(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::value_null() {
  before_value();
  os_ << "null";
}

void JsonWriter::value_raw(std::string_view token) {
  TR_EXPECTS_MSG(!strict_ || is_valid_json(token),
                 "strict JSON writer rejects raw tokens that are not "
                 "themselves valid JSON");
  before_value();
  os_ << token;
}

// ---- JsonValue ----------------------------------------------------------------

bool JsonValue::as_bool() const {
  TR_EXPECTS_MSG(kind_ == Kind::kBool, "JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  TR_EXPECTS_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return std::strtod(scalar_.c_str(), nullptr);
}

std::int64_t JsonValue::as_int64() const {
  TR_EXPECTS_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  std::int64_t out = 0;
  const char* end = scalar_.data() + scalar_.size();
  const auto res = std::from_chars(scalar_.data(), end, out);
  TR_EXPECTS_MSG(res.ec == std::errc() && res.ptr == end,
                 "JSON number is not a representable integer: " + scalar_);
  return out;
}

std::uint64_t JsonValue::as_uint64() const {
  TR_EXPECTS_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  std::uint64_t out = 0;
  const char* end = scalar_.data() + scalar_.size();
  const auto res = std::from_chars(scalar_.data(), end, out);
  TR_EXPECTS_MSG(res.ec == std::errc() && res.ptr == end,
                 "JSON number is not a representable unsigned integer: " +
                     scalar_);
  return out;
}

const std::string& JsonValue::number_token() const {
  TR_EXPECTS_MSG(kind_ == Kind::kNumber, "JSON value is not a number");
  return scalar_;
}

const std::string& JsonValue::as_string() const {
  TR_EXPECTS_MSG(kind_ == Kind::kString, "JSON value is not a string");
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  TR_EXPECTS_MSG(kind_ == Kind::kArray, "JSON value is not an array");
  return items_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  TR_EXPECTS_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  TR_EXPECTS_MSG(kind_ == Kind::kObject, "JSON value is not an object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::make_null() { return JsonValue{}; }

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_number(std::string token) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.scalar_ = std::move(token);
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.scalar_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::make_object(std::vector<Member> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(members);
  return out;
}

// ---- parsing / validation -----------------------------------------------------

namespace {

/// Append one Unicode code point as UTF-8.
void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

/// Index-based recursive-descent parser; bounded depth. With build ==
/// false it only validates (no allocation beyond the call stack), which is
/// what is_valid_json and the strict writer use on hot paths. On failure
/// pos_ is left at the offending byte for the error report.
class Parser {
 public:
  Parser(std::string_view text, bool build) : text_(text), build_(build) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!value(0, &result.value)) return fail(std::move(result));
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing garbage after JSON value";
      return fail(std::move(result));
    }
    result.ok = true;
    return result;
  }

 private:
  static constexpr std::size_t kMaxDepth = 256;

  JsonParseResult fail(JsonParseResult&& result) {
    result.ok = false;
    result.value = JsonValue{};
    result.error_offset = pos_;
    result.error = error_.empty() ? "malformed JSON" : error_;
    return std::move(result);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      error_ = "invalid literal";
      return false;
    }
    pos_ += lit.size();
    return true;
  }

  bool value(std::size_t depth, JsonValue* out) {
    if (depth > kMaxDepth) {
      error_ = "nesting deeper than 256 levels";
      return false;
    }
    if (eof()) {
      error_ = "unexpected end of input";
      return false;
    }
    switch (peek()) {
      case '{':
        return object(depth, out);
      case '[':
        return array(depth, out);
      case '"': {
        std::string decoded;
        if (!string(out ? &decoded : nullptr)) return false;
        if (out && build_) *out = JsonValue::make_string(std::move(decoded));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        if (out && build_) *out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        if (out && build_) *out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        if (out && build_) *out = JsonValue::make_null();
        return true;
      default:
        return number(out);
    }
  }

  bool object(std::size_t depth, JsonValue* out) {
    consume('{');
    skip_ws();
    std::vector<JsonValue::Member> members;
    if (consume('}')) {
      if (out && build_) *out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') {
        error_ = "expected object key";
        return false;
      }
      std::string key;
      if (!string(build_ ? &key : nullptr)) return false;
      skip_ws();
      if (!consume(':')) {
        error_ = "expected ':' after object key";
        return false;
      }
      skip_ws();
      JsonValue member;
      if (!value(depth + 1, out ? &member : nullptr)) return false;
      if (build_) members.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (consume('}')) {
        if (out && build_) *out = JsonValue::make_object(std::move(members));
        return true;
      }
      if (!consume(',')) {
        error_ = "expected ',' or '}' in object";
        return false;
      }
    }
  }

  bool array(std::size_t depth, JsonValue* out) {
    consume('[');
    skip_ws();
    std::vector<JsonValue> items;
    if (consume(']')) {
      if (out && build_) *out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue item;
      if (!value(depth + 1, out ? &item : nullptr)) return false;
      if (build_) items.push_back(std::move(item));
      skip_ws();
      if (consume(']')) {
        if (out && build_) *out = JsonValue::make_array(std::move(items));
        return true;
      }
      if (!consume(',')) {
        error_ = "expected ',' or ']' in array";
        return false;
      }
    }
  }

  /// Parse one string token; when `decoded` is non-null, also unescape
  /// into it (so validation-only passes never allocate).
  bool string(std::string* decoded) {
    consume('"');
    std::uint32_t pending_high = 0;  // pending high surrogate, 0 = none
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        if (pending_high && decoded) append_utf8(*decoded, 0xFFFD);
        ++pos_;
        return true;
      }
      if (c < 0x20) {
        error_ = "raw control character in string";
        return false;
      }
      if (c == '\\') {
        ++pos_;
        if (eof()) {
          error_ = "unterminated escape";
          return false;
        }
        const char esc = text_[pos_++];
        if (esc == 'u') {
          std::uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              error_ = "\\u escape needs four hex digits";
              return false;
            }
            const char h = text_[pos_++];
            cp = cp * 16 +
                 static_cast<std::uint32_t>(
                     h <= '9' ? h - '0' : (h | 0x20) - 'a' + 10);
          }
          if (decoded) {
            if (pending_high) {
              if (cp >= 0xDC00 && cp <= 0xDFFF) {
                append_utf8(*decoded, 0x10000 +
                                          ((pending_high - 0xD800) << 10) +
                                          (cp - 0xDC00));
              } else {
                append_utf8(*decoded, 0xFFFD);
                if (cp >= 0xD800 && cp <= 0xDBFF) {
                  pending_high = cp;
                  continue;
                }
                append_utf8(*decoded, cp);
              }
              pending_high = 0;
            } else if (cp >= 0xD800 && cp <= 0xDBFF) {
              pending_high = cp;
            } else {
              // An unpaired low surrogate decodes to U+FFFD; everything
              // else is a plain code point.
              append_utf8(*decoded,
                          cp >= 0xDC00 && cp <= 0xDFFF ? 0xFFFD : cp);
            }
          }
          continue;
        }
        if (pending_high && decoded) {
          append_utf8(*decoded, 0xFFFD);
          pending_high = 0;
        }
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            if (decoded) *decoded += esc;
            break;
          case 'b':
            if (decoded) *decoded += '\b';
            break;
          case 'f':
            if (decoded) *decoded += '\f';
            break;
          case 'n':
            if (decoded) *decoded += '\n';
            break;
          case 'r':
            if (decoded) *decoded += '\r';
            break;
          case 't':
            if (decoded) *decoded += '\t';
            break;
          default:
            pos_ -= 1;  // point at the bad escape character
            error_ = "invalid escape character";
            return false;
        }
      } else {
        if (pending_high && decoded) {
          append_utf8(*decoded, 0xFFFD);
          pending_high = 0;
        }
        if (decoded) *decoded += static_cast<char>(c);
        ++pos_;
      }
    }
    error_ = "unterminated string";
    return false;
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      error_ = "expected digits";
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number(JsonValue* out) {
    const std::size_t start = pos_;
    consume('-');
    if (consume('0')) {
      // leading zero must not be followed by more digits
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        error_ = "leading zero in number";
        return false;
      }
    } else if (!digits()) {
      error_ = "malformed number";
      return false;
    }
    if (consume('.') && !digits()) {
      error_ = "malformed number fraction";
      return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) {
        error_ = "malformed number exponent";
        return false;
      }
    }
    if (out && build_) {
      *out = JsonValue::make_number(
          std::string(text_.substr(start, pos_ - start)));
    }
    return true;
  }

  std::string_view text_;
  bool build_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text) {
  return Parser(text, /*build=*/true).run();
}

JsonParseResult validate_json(std::string_view text) {
  return Parser(text, /*build=*/false).run();
}

bool is_valid_json(std::string_view text) {
  return Parser(text, /*build=*/false).run().ok;
}

}  // namespace tokenring::obs
