#include "tokenring/obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "tokenring/common/checks.hpp"

namespace tokenring::obs {

std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  std::string token(buf, res.ptr);
  // to_chars may emit bare "1e+30"-style tokens, which are valid JSON, but
  // never inf/nan (filtered above). Integral doubles render without a dot,
  // which JSON also accepts.
  return token;
}

void JsonWriter::newline_indent(std::size_t depth) {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < depth * static_cast<std::size_t>(indent_); ++i) {
    os_ << ' ';
  }
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    TR_EXPECTS_MSG(stack_.back().array,
                   "JSON object members need key() before each value");
    if (stack_.back().entries++) os_ << ',';
    newline_indent(stack_.size());
  }
}

void JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame{false, 0});
}

void JsonWriter::end_object() {
  TR_EXPECTS(!stack_.empty() && !stack_.back().array && !pending_key_);
  const bool had_entries = stack_.back().entries > 0;
  stack_.pop_back();
  if (had_entries) newline_indent(stack_.size());
  os_ << '}';
}

void JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame{true, 0});
}

void JsonWriter::end_array() {
  TR_EXPECTS(!stack_.empty() && stack_.back().array);
  const bool had_entries = stack_.back().entries > 0;
  stack_.pop_back();
  if (had_entries) newline_indent(stack_.size());
  os_ << ']';
}

JsonWriter& JsonWriter::key(std::string_view k) {
  TR_EXPECTS_MSG(!stack_.empty() && !stack_.back().array && !pending_key_,
                 "key() is only valid directly inside an object");
  if (stack_.back().entries++) os_ << ',';
  newline_indent(stack_.size());
  os_ << '"' << escape_json(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  pending_key_ = true;
  return *this;
}

void JsonWriter::value_string(std::string_view v) {
  before_value();
  os_ << '"' << escape_json(v) << '"';
}

void JsonWriter::value_number(double v) {
  before_value();
  os_ << json_number(v);
}

void JsonWriter::value_int(std::int64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value_uint(std::uint64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value_bool(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::value_null() {
  before_value();
  os_ << "null";
}

void JsonWriter::value_raw(std::string_view token) {
  before_value();
  os_ << token;
}

// ---- validation ---------------------------------------------------------------

namespace {

/// Index-based recursive-descent validator; no allocation, bounded depth.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value(0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  static constexpr std::size_t kMaxDepth = 256;

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool value(std::size_t depth) {
    if (depth > kMaxDepth || eof()) return false;
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object(std::size_t depth) {
    consume('{');
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (eof() || peek() != '"' || !string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array(std::size_t depth) {
    consume('[');
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    consume('"');
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(
                             text_[pos_++]))) {
              return false;
            }
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      } else {
        ++pos_;
      }
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    consume('-');
    if (consume('0')) {
      // leading zero must not be followed by more digits
      if (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
    } else if (!digits()) {
      return false;
    }
    if (consume('.') && !digits()) return false;
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool is_valid_json(std::string_view text) { return Validator(text).run(); }

}  // namespace tokenring::obs
