#include "tokenring/obs/span.hpp"

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "tokenring/common/table.hpp"

namespace tokenring::obs {

std::map<std::string, SpanStats> span_profile() {
  return Registry::global().snapshot().spans;
}

std::string format_span_profile() {
  const auto spans = span_profile();
  if (spans.empty()) return {};

  std::vector<std::pair<std::string, SpanStats>> rows(spans.begin(),
                                                      spans.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns) {
      return a.second.total_ns > b.second.total_ns;
    }
    return a.first < b.first;
  });

  Table table({"span", "count", "total_ms", "mean_us", "max_us"});
  for (const auto& [name, stats] : rows) {
    const double total_ms = static_cast<double>(stats.total_ns) * 1e-6;
    const double mean_us = stats.count == 0
                               ? 0.0
                               : static_cast<double>(stats.total_ns) /
                                     static_cast<double>(stats.count) * 1e-3;
    const double max_us = static_cast<double>(stats.max_ns) * 1e-3;
    table.add_row({name, fmt(static_cast<long long>(stats.count)),
                   fmt(total_ms, 3), fmt(mean_us, 3), fmt(max_us, 3)});
  }
  std::ostringstream os;
  table.print(os);
  return os.str();
}

}  // namespace tokenring::obs
