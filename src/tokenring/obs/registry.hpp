// Structured runtime metrics: counters, high-watermark gauges, and
// fixed-bound histograms, with cheap thread-local sharding.
//
// Design constraints, in priority order:
//  * Recording must be cheap enough to leave enabled everywhere: one
//    relaxed atomic RMW on a thread-local cache line, no locks, no
//    allocation on the hot path.
//  * Aggregated values must be *deterministic* for any `--jobs` count on a
//    fixed seed: every stored quantity is an integer combined with an
//    order-independent operation (sum for counters and histogram buckets,
//    max for gauges), so the manifest's counter block is bit-identical
//    however work was sharded across the exec/ ThreadPool.
//  * Snapshots may race with recordings from live pool workers; all slots
//    are atomics so a concurrent snapshot is merely slightly stale, never
//    undefined behaviour.
//
// Each thread lazily registers one fixed-size shard of atomic slots with
// the process-wide Registry; on thread exit the shard's values fold into a
// retired accumulator. snapshot() sums retired + live shards per slot.
//
// Handle classes (Counter / Gauge / Histogram / Span in span.hpp) resolve
// the metric name to a slot range once; construct them as function-local
// statics next to the code they instrument.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tokenring::obs {

/// Aggregate of one RAII Span name (see span.hpp).
struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;

  double total_seconds() const { return static_cast<double>(total_ns) * 1e-9; }
  double max_seconds() const { return static_cast<double>(max_ns) * 1e-9; }
};

/// Point-in-time aggregate of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  /// High-watermark gauges: largest value ever recorded (0 if never).
  std::map<std::string, std::uint64_t> gauges;
  struct HistogramData {
    /// Upper bounds of the first bounds.size() buckets; bucket i counts
    /// samples <= bounds[i], the final bucket counts the overflow.
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 entries
    std::uint64_t total = 0;
  };
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, SpanStats> spans;
};

/// Quantile estimate from histogram buckets, linearly interpolated inside
/// the bucket that crosses `q` (in [0, 1]). The overflow bucket has no
/// upper edge, so samples landing there report the last bound. Shared by
/// the serve stats endpoint and the load benchmarks so both quote the
/// same definition of p99.
double histogram_percentile(const MetricsSnapshot::HistogramData& h, double q);

/// Process-wide metric registry. Use the handle classes below rather than
/// calling the registry directly.
class Registry {
 public:
  /// The singleton every handle records into.
  static Registry& global();

  /// Register (or look up) a metric; returns the first slot index. A name
  /// may be registered repeatedly with the same kind/shape and resolves to
  /// the same slots; re-registering with a different kind is an error.
  std::size_t register_counter(const std::string& name);
  std::size_t register_gauge(const std::string& name);
  std::size_t register_histogram(const std::string& name,
                                 std::vector<double> bounds);
  std::size_t register_span(const std::string& name);

  /// Hot-path slot operations (relaxed atomics on this thread's shard).
  void add(std::size_t slot, std::uint64_t delta);
  void record_max(std::size_t slot, std::uint64_t value);

  /// Sum/ max-merge all shards into one deterministic snapshot.
  MetricsSnapshot snapshot() const;

  /// Zero every recorded value (metric registrations survive). Meant for
  /// tests and between independent runs in one process; concurrent
  /// recordings may survive the reset.
  void reset_values();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;
  ~Registry() = default;

  friend class ShardHolder;

  enum class Kind { kCounter, kGauge, kHistogram, kSpan };

  struct Metric {
    std::string name;
    Kind kind{};
    std::size_t first_slot = 0;
    std::size_t num_slots = 0;
    std::vector<double> bounds;  // histograms only
  };

  /// Fixed shard size: registering past this many slots is a precondition
  /// error (raise it if the instrumentation ever legitimately outgrows it).
  static constexpr std::size_t kMaxSlots = 1024;

  struct Shard;
  Shard& local_shard();
  std::size_t register_metric(const std::string& name, Kind kind,
                              std::size_t num_slots,
                              std::vector<double> bounds);
  std::uint64_t slot_value_locked(const Metric& m, std::size_t offset,
                                  bool max_merge) const;

  mutable std::mutex mutex_;
  std::vector<Metric> metrics_;
  std::map<std::string, std::size_t> by_name_;  // name -> metrics_ index
  std::size_t next_slot_ = 0;
  /// Slots combined by max (gauges, span max_ns) instead of sum; consulted
  /// when a retiring thread folds its shard into the accumulator.
  std::array<bool, kMaxSlots> max_merge_slot_{};
  std::vector<Shard*> shards_;                  // live per-thread shards
  std::vector<std::atomic<std::uint64_t>>* retired_ = nullptr;  // lazily built
};

/// Monotonically increasing event count; aggregate = sum.
class Counter {
 public:
  explicit Counter(const std::string& name)
      : slot_(Registry::global().register_counter(name)) {}
  void add(std::uint64_t delta = 1) const {
    Registry::global().add(slot_, delta);
  }

 private:
  std::size_t slot_;
};

/// High-watermark gauge; aggregate = max of recorded values.
class Gauge {
 public:
  explicit Gauge(const std::string& name)
      : slot_(Registry::global().register_gauge(name)) {}
  void record(std::uint64_t value) const {
    Registry::global().record_max(slot_, value);
  }

 private:
  std::size_t slot_;
};

/// Fixed-bound histogram; bucket i counts samples <= bounds[i], the last
/// bucket the overflow. Bucket counts are integers, so aggregation is
/// deterministic regardless of which thread observed each sample.
class Histogram {
 public:
  Histogram(const std::string& name, std::vector<double> bounds);
  void observe(double sample) const;

 private:
  std::size_t first_slot_;
  std::vector<double> bounds_;
};

}  // namespace tokenring::obs
