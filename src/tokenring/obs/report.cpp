#include "tokenring/obs/report.hpp"

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "tokenring/obs/span.hpp"

namespace tokenring::obs {

void declare_report_flags(CliFlags& flags) {
  flags.declare("format", "table",
                "output format: table (human), csv (legacy CSV block), "
                "json (run manifest on stdout)");
  flags.declare("out", "", "write the run manifest JSON to this file");
  flags.declare("profile", "false",
                "print the span-profile report to stderr on exit");
}

std::optional<int> bootstrap_run(RunReport& report, CliFlags& flags,
                                 int argc, char** argv,
                                 const StandardFlags& standard) {
  if (standard.jobs) declare_jobs_flag(flags);
  if (standard.batch) declare_batch_flag(flags);
  declare_report_flags(flags);
  switch (flags.parse_detailed(argc, argv)) {
    case CliFlags::ParseOutcome::kHelp:
      return 0;
    case CliFlags::ParseOutcome::kError:
      return 1;
    case CliFlags::ParseOutcome::kOk:
      break;
  }
  if (!report.init(flags)) return 1;
  return std::nullopt;
}

RunReport::RunReport(std::string tool_name) {
  manifest_.tool = std::move(tool_name);
}

bool RunReport::init(const CliFlags& flags) {
  if (flags.has("format")) {
    const std::string fmt = flags.get_string("format");
    if (fmt == "table") {
      format_ = OutputFormat::kTable;
    } else if (fmt == "csv") {
      format_ = OutputFormat::kCsv;
    } else if (fmt == "json") {
      format_ = OutputFormat::kJson;
    } else {
      std::fprintf(stderr,
                   "unknown --format value: %s (expected table, csv, json)\n",
                   fmt.c_str());
      return false;
    }
  }
  if (flags.has("out")) out_path_ = flags.get_string("out");
  if (flags.has("profile")) profile_ = flags.get_bool("profile");
  if (flags.has("seed")) {
    manifest_.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  }
  if (flags.has("jobs")) manifest_.jobs = get_jobs(flags);
  manifest_.config = flags.items();
  return true;
}

void RunReport::add_table(const std::string& name, const Table& table) {
  manifest_.add_table(name, table);
  if (format_ == OutputFormat::kTable) {
    table.print(std::cout);
    std::printf("\nCSV:\n");
    table.print_csv(std::cout);
  } else if (format_ == OutputFormat::kCsv) {
    table.print_csv(std::cout);
  }
}

void RunReport::note(const char* fmt, ...) {
  if (format_ != OutputFormat::kTable) return;
  std::va_list args;
  va_start(args, fmt);
  std::vfprintf(stdout, fmt, args);
  va_end(args);
}

int RunReport::finish() {
  if (finished_) return 0;
  finished_ = true;
  manifest_.metrics = Registry::global().snapshot();

  int exit_code = 0;
  if (format_ == OutputFormat::kJson) {
    manifest_.write_json(std::cout);
  }
  if (!out_path_.empty()) {
    std::ofstream out(out_path_);
    if (!out) {
      std::fprintf(stderr, "cannot write manifest: %s\n", out_path_.c_str());
      exit_code = 1;
    } else {
      manifest_.write_json(out);
    }
  }
  if (profile_) {
    const std::string profile = format_span_profile();
    std::fprintf(stderr, "%s",
                 profile.empty() ? "span profile: no spans recorded\n"
                                 : profile.c_str());
  }
  return exit_code;
}

}  // namespace tokenring::obs
