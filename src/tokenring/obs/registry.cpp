#include "tokenring/obs/registry.hpp"

#include <algorithm>
#include <array>

#include "tokenring/common/checks.hpp"

namespace tokenring::obs {

double histogram_percentile(const MetricsSnapshot::HistogramData& h,
                            double q) {
  if (h.total == 0) return 0.0;
  const double target = q * static_cast<double>(h.total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::uint64_t next = cumulative + h.counts[i];
    if (static_cast<double>(next) >= target && h.counts[i] > 0) {
      const double lo = i == 0 ? 0.0 : h.bounds[i - 1];
      // Overflow bucket has no upper bound; report its lower edge.
      const double hi = i < h.bounds.size() ? h.bounds[i] : lo;
      const double into = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(h.counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, into));
    }
    cumulative = next;
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

/// One thread's slot array. Slots are atomics so snapshot() may read them
/// while the owning thread records; both sides use relaxed ordering (the
/// values are independent tallies, not synchronization).
struct Registry::Shard {
  std::array<std::atomic<std::uint64_t>, Registry::kMaxSlots> slots{};
};

/// Registers the shard on first use, folds it into the retired accumulator
/// on thread exit (so short-lived pool workers don't lose their tallies).
class ShardHolder {
 public:
  explicit ShardHolder(Registry& registry) : registry_(registry) {
    std::lock_guard<std::mutex> lock(registry_.mutex_);
    registry_.shards_.push_back(&shard);
  }

  ~ShardHolder() {
    std::lock_guard<std::mutex> lock(registry_.mutex_);
    auto& shards = registry_.shards_;
    shards.erase(std::remove(shards.begin(), shards.end(), &shard),
                 shards.end());
    if (!registry_.retired_) {
      // Leaked intentionally: the accumulator must outlive every thread,
      // including ones exiting during static destruction.
      registry_.retired_ =
          new std::vector<std::atomic<std::uint64_t>>(Registry::kMaxSlots);
    }
    for (std::size_t i = 0; i < Registry::kMaxSlots; ++i) {
      const std::uint64_t v = shard.slots[i].load(std::memory_order_relaxed);
      if (v == 0) continue;
      auto& cell = (*registry_.retired_)[i];
      if (registry_.max_merge_slot_[i]) {
        std::uint64_t current = cell.load(std::memory_order_relaxed);
        while (v > current && !cell.compare_exchange_weak(
                                  current, v, std::memory_order_relaxed)) {
        }
      } else {
        cell.fetch_add(v, std::memory_order_relaxed);
      }
    }
  }

  Registry::Shard shard;

 private:
  Registry& registry_;
};

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Shard& Registry::local_shard() {
  thread_local ShardHolder holder(*this);
  return holder.shard;
}

std::size_t Registry::register_metric(const std::string& name, Kind kind,
                                      std::size_t num_slots,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const Metric& existing = metrics_[it->second];
    TR_EXPECTS_MSG(existing.kind == kind && existing.num_slots == num_slots &&
                       existing.bounds == bounds,
                   "metric re-registered with a different shape: " + name);
    return existing.first_slot;
  }
  TR_EXPECTS_MSG(next_slot_ + num_slots <= kMaxSlots,
                 "metric registry slot capacity exhausted");
  Metric m;
  m.name = name;
  m.kind = kind;
  m.first_slot = next_slot_;
  m.num_slots = num_slots;
  m.bounds = std::move(bounds);
  next_slot_ += num_slots;
  if (kind == Kind::kGauge) max_merge_slot_[m.first_slot] = true;
  if (kind == Kind::kSpan) max_merge_slot_[m.first_slot + 2] = true;
  by_name_[name] = metrics_.size();
  metrics_.push_back(std::move(m));
  return metrics_.back().first_slot;
}

std::size_t Registry::register_counter(const std::string& name) {
  return register_metric(name, Kind::kCounter, 1, {});
}

std::size_t Registry::register_gauge(const std::string& name) {
  return register_metric(name, Kind::kGauge, 1, {});
}

std::size_t Registry::register_histogram(const std::string& name,
                                         std::vector<double> bounds) {
  TR_EXPECTS_MSG(!bounds.empty() && std::is_sorted(bounds.begin(), bounds.end()),
                 "histogram bounds must be non-empty and ascending");
  const std::size_t slots = bounds.size() + 1;
  return register_metric(name, Kind::kHistogram, slots, std::move(bounds));
}

std::size_t Registry::register_span(const std::string& name) {
  return register_metric(name, Kind::kSpan, 3, {});  // count, total_ns, max_ns
}

void Registry::add(std::size_t slot, std::uint64_t delta) {
  local_shard().slots[slot].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::record_max(std::size_t slot, std::uint64_t value) {
  auto& cell = local_shard().slots[slot];
  std::uint64_t current = cell.load(std::memory_order_relaxed);
  while (value > current &&
         !cell.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

std::uint64_t Registry::slot_value_locked(const Metric& m, std::size_t offset,
                                          bool max_merge) const {
  const std::size_t slot = m.first_slot + offset;
  std::uint64_t value =
      retired_ ? (*retired_)[slot].load(std::memory_order_relaxed) : 0;
  for (const Shard* shard : shards_) {
    const std::uint64_t v = shard->slots[slot].load(std::memory_order_relaxed);
    value = max_merge ? std::max(value, v) : value + v;
  }
  return value;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Metric& m : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
        snap.counters[m.name] = slot_value_locked(m, 0, false);
        break;
      case Kind::kGauge:
        snap.gauges[m.name] = slot_value_locked(m, 0, true);
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::HistogramData h;
        h.bounds = m.bounds;
        h.counts.resize(m.num_slots);
        for (std::size_t i = 0; i < m.num_slots; ++i) {
          h.counts[i] = slot_value_locked(m, i, false);
          h.total += h.counts[i];
        }
        snap.histograms[m.name] = std::move(h);
        break;
      }
      case Kind::kSpan: {
        SpanStats s;
        s.count = slot_value_locked(m, 0, false);
        s.total_ns = slot_value_locked(m, 1, false);
        s.max_ns = slot_value_locked(m, 2, true);
        if (s.count > 0) snap.spans[m.name] = s;
        break;
      }
    }
  }
  return snap;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t slot = 0; slot < next_slot_; ++slot) {
    if (retired_) (*retired_)[slot].store(0, std::memory_order_relaxed);
    for (Shard* shard : shards_) {
      shard->slots[slot].store(0, std::memory_order_relaxed);
    }
  }
}

Histogram::Histogram(const std::string& name, std::vector<double> bounds)
    : bounds_(bounds) {
  first_slot_ = Registry::global().register_histogram(name, std::move(bounds));
}

void Histogram::observe(double sample) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  Registry::global().add(first_slot_ + bucket, 1);
}

}  // namespace tokenring::obs
