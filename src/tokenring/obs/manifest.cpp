#include "tokenring/obs/manifest.hpp"

#include "tokenring/obs/json.hpp"

#ifndef TOKENRING_VERSION
#define TOKENRING_VERSION "0.0.0"
#endif
#ifndef TOKENRING_GIT_DESCRIBE
#define TOKENRING_GIT_DESCRIBE "unknown"
#endif

namespace tokenring::obs {

namespace {

/// A table cell is emitted as a JSON number iff it already *is* one — the
/// strict RFC 8259 grammar, so "1e9" and "-0.5" qualify but "inf", "1,000"
/// and "0x10" stay strings.
bool is_number_token(const std::string& cell) {
  if (cell.empty()) return false;
  const char c = cell.front();
  if (c != '-' && (c < '0' || c > '9')) return false;
  return is_valid_json(cell);
}

void write_cell(JsonWriter& w, const std::string& cell) {
  if (is_number_token(cell)) {
    w.value_raw(cell);
  } else {
    w.value_string(cell);
  }
}

}  // namespace

std::string tool_version() { return TOKENRING_VERSION; }

std::string git_describe() { return TOKENRING_GIT_DESCRIBE; }

void RunManifest::add_table(const std::string& name, const Table& table) {
  results.push_back(ResultTable{name, table.headers(), table.data()});
}

void RunManifest::write_json(std::ostream& os, int indent) const {
  JsonWriter w(os, indent);
  w.begin_object();
  w.key("schema").value_string("tokenring.run_manifest/1");
  w.key("tool").value_string(tool);
  w.key("version").value_string(version);
  w.key("git").value_string(git);
  if (seed) {
    w.key("seed").value_uint(*seed);
  } else {
    w.key("seed").value_null();
  }
  if (jobs) {
    w.key("jobs").value_uint(*jobs);
  } else {
    w.key("jobs").value_null();
  }

  w.key("config").begin_object();
  for (const auto& [k, v] : config) w.key(k).value_string(v);
  w.end_object();

  w.key("results").begin_array();
  for (const ResultTable& t : results) {
    w.begin_object();
    w.key("name").value_string(t.name);
    w.key("headers").begin_array();
    for (const auto& h : t.headers) w.value_string(h);
    w.end_array();
    w.key("rows").begin_array();
    for (const auto& row : t.rows) {
      w.begin_object();
      for (std::size_t i = 0; i < row.size() && i < t.headers.size(); ++i) {
        w.key(t.headers[i]);
        write_cell(w, row[i]);
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("counters").begin_object();
  for (const auto& [name, value] : metrics.counters) w.key(name).value_uint(value);
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, value] : metrics.gauges) w.key(name).value_uint(value);
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : metrics.histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (double b : h.bounds) w.value_number(b);
    w.end_array();
    w.key("counts").begin_array();
    for (std::uint64_t c : h.counts) w.value_uint(c);
    w.end_array();
    w.key("total").value_uint(h.total);
    w.end_object();
  }
  w.end_object();

  w.key("span_profile").begin_object();
  for (const auto& [name, s] : metrics.spans) {
    w.key(name).begin_object();
    w.key("count").value_uint(s.count);
    w.key("total_ns").value_uint(s.total_ns);
    w.key("max_ns").value_uint(s.max_ns);
    w.end_object();
  }
  w.end_object();

  w.end_object();
  os << '\n';
}

}  // namespace tokenring::obs
