// RAII wall-time spans feeding the process-wide profile report.
//
// A Span measures one scope with steady_clock and records (count, total_ns,
// max_ns) into the metric Registry under its name, so the profile aggregates
// across threads and repeated entries. Span names are registered once per
// call site; construct the handle as a function-local static when the scope
// is hot:
//
//   void run_stage() {
//     static const obs::SpanHandle handle("experiments/fig1_pdp");
//     obs::Span span(handle);
//     ...
//   }
//
// The one-argument Span(name) convenience constructor does the registry
// lookup on every entry; fine for per-run stages, wrong for per-trial loops.

#pragma once

#include <chrono>
#include <cstddef>
#include <map>
#include <string>

#include "tokenring/obs/registry.hpp"

namespace tokenring::obs {

/// Resolved slot range for a named span; cheap to copy, safe to share.
class SpanHandle {
 public:
  explicit SpanHandle(const std::string& name)
      : first_slot_(Registry::global().register_span(name)) {}
  std::size_t first_slot() const { return first_slot_; }

 private:
  std::size_t first_slot_;
};

/// RAII timer: records one sample into the handle's span on destruction.
class Span {
 public:
  explicit Span(const SpanHandle& handle)
      : slot_(handle.first_slot()), start_(std::chrono::steady_clock::now()) {}
  explicit Span(const std::string& name) : Span(SpanHandle(name)) {}

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
    Registry& reg = Registry::global();
    reg.add(slot_ + 0, 1);
    reg.add(slot_ + 1, ns);
    reg.record_max(slot_ + 2, ns);
  }

 private:
  std::size_t slot_;
  std::chrono::steady_clock::time_point start_;
};

/// Current span aggregates (empty for spans never entered).
std::map<std::string, SpanStats> span_profile();

/// Aligned human-readable profile report, sorted by total time descending.
/// Empty string when no span has fired.
std::string format_span_profile();

}  // namespace tokenring::obs
