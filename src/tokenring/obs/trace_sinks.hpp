// Concrete TraceSink implementations for the simulators.
//
//  * FormatterSink   — human-readable timeline lines to any ostream.
//  * JsonlTraceSink  — buffered JSONL: one compact JSON object per record
//                      with stable, kind-specific field names.
//  * RingBufferSink  — failure forensics: retains the last N records seen
//                      before the first deadline miss, then freezes.
//  * FanOutSink      — broadcasts each record to several sinks.
//
// All sinks are synchronous and single-threaded like the simulators that
// feed them; share one sink across concurrent sims only with external
// locking (or give each trial its own).

#pragma once

#include <deque>
#include <fstream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "tokenring/sim/trace.hpp"

namespace tokenring::obs {

/// Stable lower_snake_case kind name used in JSONL output (to_string() is
/// the human display name and is not part of the schema).
const char* json_kind_name(sim::TraceEventKind kind);

/// JSON field name carrying the record's kind-specific quantity, e.g.
/// "response_time_s" for completions and misses, "payload_bits" for
/// arrivals. See sim::TraceRecord's accessors for the unit conventions.
const char* json_detail_field(sim::TraceEventKind kind);

/// Render one record as a single-line JSON object (no trailing newline):
///   {"at_s":0.00125,"kind":"message_complete","station":3,
///    "response_time_s":0.0004}
std::string trace_record_json(const sim::TraceRecord& record);

/// Writes format_trace_record() lines to an ostream.
class FormatterSink final : public sim::TraceSink {
 public:
  explicit FormatterSink(std::ostream& os) : os_(os) {}
  void emit(const sim::TraceRecord& record) override;

 private:
  std::ostream& os_;
};

/// Buffered JSONL writer: one JSON object per line. Lines are buffered and
/// flushed when the buffer passes a threshold, on flush(), and at
/// destruction.
class JsonlTraceSink final : public sim::TraceSink {
 public:
  /// Write to a file (truncates). Check ok() before running the sim.
  explicit JsonlTraceSink(const std::string& path);
  /// Write to an existing stream (tests).
  explicit JsonlTraceSink(std::ostream& os);
  ~JsonlTraceSink() override;

  bool ok() const { return os_ != nullptr && os_->good(); }
  void emit(const sim::TraceRecord& record) override;
  void flush();

 private:
  std::ofstream file_;
  std::ostream* os_ = nullptr;
  std::string buffer_;
};

/// Retains a sliding window of the most recent records; on the first
/// kDeadlineMiss the window freezes, preserving exactly the `capacity`
/// events (fewer if the sim was younger) that preceded the miss. The miss
/// record itself is captured separately.
class RingBufferSink final : public sim::TraceSink {
 public:
  explicit RingBufferSink(std::size_t capacity) : capacity_(capacity) {}

  void emit(const sim::TraceRecord& record) override;

  /// Records preceding the first miss, oldest first (the live window if no
  /// miss has occurred yet).
  std::vector<sim::TraceRecord> before_miss() const;
  const std::optional<sim::TraceRecord>& first_miss() const {
    return first_miss_;
  }

 private:
  std::size_t capacity_;
  std::deque<sim::TraceRecord> window_;
  std::optional<sim::TraceRecord> first_miss_;
};

/// Broadcasts each record to every registered sink, in order. Sinks are
/// borrowed, not owned.
class FanOutSink final : public sim::TraceSink {
 public:
  FanOutSink() = default;
  explicit FanOutSink(std::vector<sim::TraceSink*> sinks)
      : sinks_(std::move(sinks)) {}
  void add(sim::TraceSink* sink) { sinks_.push_back(sink); }
  void emit(const sim::TraceRecord& record) override {
    for (sim::TraceSink* sink : sinks_) sink->emit(record);
  }

 private:
  std::vector<sim::TraceSink*> sinks_;
};

}  // namespace tokenring::obs
