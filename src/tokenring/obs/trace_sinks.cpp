#include "tokenring/obs/trace_sinks.hpp"

#include <sstream>

#include "tokenring/obs/json.hpp"

namespace tokenring::obs {

const char* json_kind_name(sim::TraceEventKind kind) {
  switch (kind) {
    case sim::TraceEventKind::kMessageArrival:
      return "message_arrival";
    case sim::TraceEventKind::kSyncFrameStart:
      return "sync_frame_start";
    case sim::TraceEventKind::kMessageComplete:
      return "message_complete";
    case sim::TraceEventKind::kDeadlineMiss:
      return "deadline_miss";
    case sim::TraceEventKind::kAsyncFrame:
      return "async_frame";
    case sim::TraceEventKind::kTokenArrival:
      return "token_arrival";
  }
  return "unknown";
}

const char* json_detail_field(sim::TraceEventKind kind) {
  switch (kind) {
    case sim::TraceEventKind::kMessageArrival:
      return "payload_bits";
    case sim::TraceEventKind::kSyncFrameStart:
    case sim::TraceEventKind::kAsyncFrame:
      return "frame_time_s";
    case sim::TraceEventKind::kMessageComplete:
    case sim::TraceEventKind::kDeadlineMiss:
      return "response_time_s";
    case sim::TraceEventKind::kTokenArrival:
      return "earliness_s";
  }
  return "detail";
}

std::string trace_record_json(const sim::TraceRecord& record) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.key("at_s").value_number(record.at);
  w.key("kind").value_string(json_kind_name(record.kind));
  w.key("station").value_int(record.station);
  w.key(json_detail_field(record.kind)).value_number(record.detail);
  w.end_object();
  return os.str();
}

void FormatterSink::emit(const sim::TraceRecord& record) {
  os_ << sim::format_trace_record(record) << '\n';
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : file_(path), os_(&file_) {}

JsonlTraceSink::JsonlTraceSink(std::ostream& os) : os_(&os) {}

JsonlTraceSink::~JsonlTraceSink() { flush(); }

void JsonlTraceSink::emit(const sim::TraceRecord& record) {
  buffer_ += trace_record_json(record);
  buffer_ += '\n';
  // Flush in coarse chunks so tracing a long run is not one write() per
  // event.
  if (buffer_.size() >= 64 * 1024) flush();
}

void JsonlTraceSink::flush() {
  if (os_ == nullptr || buffer_.empty()) return;
  os_->write(buffer_.data(),
             static_cast<std::streamsize>(buffer_.size()));
  os_->flush();
  buffer_.clear();
}

void RingBufferSink::emit(const sim::TraceRecord& record) {
  if (first_miss_) return;  // frozen
  if (record.kind == sim::TraceEventKind::kDeadlineMiss) {
    first_miss_ = record;
    return;
  }
  window_.push_back(record);
  if (window_.size() > capacity_) window_.pop_front();
}

std::vector<sim::TraceRecord> RingBufferSink::before_miss() const {
  return std::vector<sim::TraceRecord>(window_.begin(), window_.end());
}

}  // namespace tokenring::obs
