// RunManifest: the machine-readable record of one tool or bench invocation.
//
// Schema (tokenring.run_manifest/1):
//   {
//     "schema": "tokenring.run_manifest/1",
//     "tool": "<binary or subcommand name>",
//     "version": "<project version>",
//     "git": "<git describe at configure time>",
//     "seed": <uint> | null,
//     "jobs": <uint> | null,
//     "config": { "<flag>": "<final value>", ... },
//     "results": [ { "name": "...", "headers": [...],
//                    "rows": [ { "<header>": cell, ... }, ... ] }, ... ],
//     "counters": { "<name>": <uint>, ... },
//     "gauges": { "<name>": <uint>, ... },
//     "histograms": { "<name>": { "bounds": [...], "counts": [...],
//                                 "total": <uint> }, ... },
//     "span_profile": { "<name>": { "count": <uint>, "total_ns": <uint>,
//                                   "max_ns": <uint> }, ... }
//   }
//
// Result cells are the same pre-formatted strings shown in the ASCII table;
// cells that are valid JSON number tokens are emitted as numbers, everything
// else as strings. Counters/gauges/histograms are integers merged
// order-independently (see registry.hpp), so for a fixed seed the metric
// blocks are bit-identical for any --jobs value. span_profile carries wall
// times and is *excluded* from that guarantee.

#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "tokenring/common/table.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::obs {

/// Project version baked in at configure time.
std::string tool_version();

/// `git describe` output captured at configure time ("unknown" outside git).
std::string git_describe();

struct RunManifest {
  std::string tool;
  std::string version = tool_version();
  std::string git = git_describe();
  std::optional<std::uint64_t> seed;
  std::optional<std::uint64_t> jobs;
  std::vector<std::pair<std::string, std::string>> config;

  struct ResultTable {
    std::string name;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  std::vector<ResultTable> results;

  MetricsSnapshot metrics;

  void add_table(const std::string& name, const Table& table);

  /// Serialize as one JSON document. indent 0 emits a single line.
  void write_json(std::ostream& os, int indent = 2) const;
};

}  // namespace tokenring::obs
