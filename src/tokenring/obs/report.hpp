// RunReport: the single output surface for bench binaries and tool
// subcommands.
//
// Usage pattern:
//
//   CliFlags flags;
//   obs::declare_report_flags(flags);   // --format, --out, --profile
//   ... declare study flags, parse ...
//   obs::RunReport report("bench_fig1");
//   if (!report.init(flags)) return 1;  // bad --format value
//   if (report.verbose()) std::printf("banner...\n");
//   ... run study ...
//   report.add_table("fig1", table);
//   if (report.verbose()) std::printf("observations...\n");
//   return report.finish();
//
// Format semantics:
//  * table (default): add_table prints the aligned table followed by the
//    legacy "CSV:" block — byte-for-byte the pre-obs stdout — and verbose()
//    is true so banners/observations still print.
//  * csv: add_table prints only the CSV block (header + rows), nothing else.
//  * json: nothing prints until finish(), which writes the full RunManifest
//    to stdout as pretty JSON.
// Independently of format, --out <path> writes the manifest to a file and
// --profile prints the span-profile report to stderr at finish().

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "tokenring/common/cli.hpp"
#include "tokenring/common/table.hpp"
#include "tokenring/obs/manifest.hpp"

namespace tokenring::obs {

enum class OutputFormat { kTable, kCsv, kJson };

/// Declare the shared --format/--out/--profile flags.
void declare_report_flags(CliFlags& flags);

/// Which shared flag families bootstrap_run declares on top of the study
/// flags the caller already declared. Both default on: most bench mains
/// sweep Monte Carlo points and take --jobs/--batch; the few that manage
/// their own worker counts (parallel_scaling's --jobs-list) turn them off.
struct StandardFlags {
  bool jobs = true;
  bool batch = true;
};

/// One-call bootstrap for a bench/tool main, replacing the
/// declare/parse/init boilerplate every binary used to repeat:
///
///   CliFlags flags;
///   ... declare study flags ...
///   obs::RunReport report("bench_fig1");
///   if (auto rc = obs::bootstrap_run(report, flags, argc, argv)) return *rc;
///
/// Declares --jobs/--batch (per `standard`) and --format/--out/--profile,
/// parses argv, and initializes `report`. Returns std::nullopt when the
/// run should proceed; otherwise the process exit code — 0 for an explicit
/// --help, 1 for an unknown/malformed flag or a bad --format value.
class RunReport;
std::optional<int> bootstrap_run(RunReport& report, CliFlags& flags,
                                 int argc, char** argv,
                                 const StandardFlags& standard = {});

class RunReport {
 public:
  explicit RunReport(std::string tool_name);

  /// Read --format/--out/--profile (if declared) plus --seed/--jobs for the
  /// manifest echo. Returns false (with a stderr message) on an unknown
  /// --format value.
  bool init(const CliFlags& flags);

  OutputFormat format() const { return format_; }
  /// True in table mode only: gates human banners and observations.
  bool verbose() const { return format_ == OutputFormat::kTable; }

  void set_seed(std::uint64_t seed) { manifest_.seed = seed; }
  void set_jobs(std::uint64_t jobs) { manifest_.jobs = jobs; }

  /// Record a result table; prints it immediately in table/csv modes.
  void add_table(const std::string& name, const Table& table);

  /// Record a table in the manifest without printing anything — for
  /// binaries that manage their own stdout (parallel_scaling's historical
  /// format, google-benchmark's console output).
  void record_table(const std::string& name, const Table& table) {
    manifest_.add_table(name, table);
  }

  /// printf-style human commentary (banners, observations); emitted to
  /// stdout in table mode, suppressed in csv/json modes.
#if defined(__GNUC__) || defined(__clang__)
  __attribute__((format(printf, 2, 3)))
#endif
  void note(const char* fmt, ...);

  /// Snapshot metrics, emit the manifest (stdout in json mode, --out file if
  /// requested), print the span profile if --profile. Returns the process
  /// exit code (0, or 1 if the --out file could not be written).
  int finish();

 private:
  RunManifest manifest_;
  OutputFormat format_ = OutputFormat::kTable;
  std::string out_path_;
  bool profile_ = false;
  bool finished_ = false;
};

}  // namespace tokenring::obs
