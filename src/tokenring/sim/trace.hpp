// Optional event tracing for the protocol simulators.
//
// Install a TraceHook in a simulation config to receive every notable
// protocol event with its timestamp; the ring_simulation example uses this
// to print a human-readable timeline. Tracing is off (empty hook) by
// default and costs nothing when disabled.

#pragma once

#include <functional>
#include <string>

#include "tokenring/common/units.hpp"

namespace tokenring::sim {

/// Kinds of traced protocol events.
enum class TraceEventKind {
  /// A synchronous message was released at a station.
  kMessageArrival,
  /// A station began transmitting a synchronous frame.
  kSyncFrameStart,
  /// A synchronous message's last bit was transmitted.
  kMessageComplete,
  /// A completed (or abandoned) message violated its deadline.
  kDeadlineMiss,
  /// An asynchronous frame was transmitted.
  kAsyncFrame,
  /// The token arrived at a station (TTP) / was captured (PDP).
  kTokenArrival,
};

/// Display name for a trace event kind.
const char* to_string(TraceEventKind kind);

/// One traced event.
struct TraceRecord {
  Seconds at = 0.0;
  TraceEventKind kind{};
  int station = -1;
  /// Kind-specific quantity: response time for kMessageComplete /
  /// kDeadlineMiss, frame time for frame events, earliness for
  /// kTokenArrival (TTP). 0 when not applicable.
  double detail = 0.0;
};

/// Callback invoked synchronously for each event; must not re-enter the
/// simulation.
using TraceHook = std::function<void(const TraceRecord&)>;

/// Render one record as a fixed-width line ("[  1.234 ms] station  3 ...").
std::string format_trace_record(const TraceRecord& record);

}  // namespace tokenring::sim
