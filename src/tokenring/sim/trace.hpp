// Optional event tracing for the protocol simulators.
//
// Point a simulation config's `trace` at a TraceSink to receive every
// notable protocol event with its timestamp. Tracing is off (null sink) by
// default and costs nothing when disabled. Concrete sinks — human-readable
// formatter, buffered JSONL file, ring buffer, fan-out — live in
// tokenring/obs/trace_sinks.hpp; CallbackSink below adapts an arbitrary
// lambda for tests and examples.

#pragma once

#include <functional>
#include <string>
#include <utility>

#include "tokenring/common/units.hpp"

namespace tokenring::sim {

/// Kinds of traced protocol events.
enum class TraceEventKind {
  /// A synchronous message was released at a station.
  kMessageArrival,
  /// A station began transmitting a synchronous frame.
  kSyncFrameStart,
  /// A synchronous message's last bit was transmitted.
  kMessageComplete,
  /// A completed (or abandoned) message violated its deadline.
  kDeadlineMiss,
  /// An asynchronous frame was transmitted.
  kAsyncFrame,
  /// The token arrived at a station (TTP) / was captured (PDP).
  kTokenArrival,
};

/// Display name for a trace event kind.
const char* to_string(TraceEventKind kind);

/// One traced event. The raw `detail` field is kind-overloaded; prefer the
/// named accessors, which document the unit and which kinds carry them.
///
/// Stable per-kind field list (the wire contract of every sink, including
/// the JSONL sink in obs/trace_sinks.hpp). Both simulators populate records
/// through the single sim::emit() below, so this table is authoritative:
///
///   kind             | at                      | station   | detail
///   -----------------+-------------------------+-----------+------------------
///   kMessageArrival  | release time            | releasing | payload [bits]
///   kSyncFrameStart  | first bit on the medium | sender    | frame time [s]
///   kMessageComplete | last bit received       | sender    | response time [s]
///   kDeadlineMiss    | completion (= the       | sender    | response time [s]
///                    | kMessageComplete time)  |           |
///   kAsyncFrame      | last async bit sent     | sender    | medium time [s]
///   kTokenArrival    | token reaches station   | visited   | async budget [s]
///                    | (TTP) / capture done    |           | (TTP earliness;
///                    | (PDP)                   |           |  0 for PDP)
struct TraceRecord {
  Seconds at = 0.0;
  TraceEventKind kind{};
  int station = -1;
  /// Kind-specific quantity; see the accessors below for the mapping.
  double detail = 0.0;

  /// Message response time in seconds (release -> last bit). Meaningful for
  /// kMessageComplete and kDeadlineMiss.
  Seconds response_time() const { return detail; }
  /// Frame transmission time in seconds. Meaningful for kSyncFrameStart and
  /// kAsyncFrame.
  Seconds frame_time() const { return detail; }
  /// Token earliness in seconds (TTRT minus observed rotation time; TTP
  /// timed-token protocol only). Meaningful for kTokenArrival.
  Seconds earliness() const { return detail; }
  /// Message payload size in bits. Meaningful for kMessageArrival.
  double payload_bits() const { return detail; }
};

/// Receives simulator events synchronously. Implementations must not
/// re-enter the simulation from emit().
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceRecord& record) = 0;
};

/// Adapts a callable (lambda, std::function) as a TraceSink; the idiom for
/// tests and one-off examples that just collect records.
class CallbackSink final : public TraceSink {
 public:
  explicit CallbackSink(std::function<void(const TraceRecord&)> fn)
      : fn_(std::move(fn)) {}
  void emit(const TraceRecord& record) override { fn_(record); }

 private:
  std::function<void(const TraceRecord&)> fn_;
};

/// The one place TraceRecords are built and delivered: both protocol
/// simulators report every traced event through this call, so the per-kind
/// field mapping above cannot drift between models. No-op on a null sink.
/// `at` is explicit because TTP reports mid-visit timestamps (completions
/// inside a visit) that differ from the simulator clock.
inline void emit(TraceSink* sink, Seconds at, TraceEventKind kind, int station,
                 double detail) {
  if (sink != nullptr) sink->emit(TraceRecord{at, kind, station, detail});
}

/// Render one record as a fixed-width line ("[  1.234 ms] station  3 ...").
std::string format_trace_record(const TraceRecord& record);

}  // namespace tokenring::sim
