// Discrete-event simulation of the priority-driven protocol (IEEE 802.5
// with rate-monotonic priorities) — paper Section 4.1/4.2.
//
// Model:
//  * One frame occupies the medium at a time. A frame's effective medium
//    occupancy is max(frame time, Theta): when the frame is shorter than
//    the ring latency the sender must wait for its header (carrying the
//    reservation field) to return before arbitration can conclude.
//  * Arbitration: when the medium frees, the token goes to the station with
//    the highest-priority pending frame. Reservation collection is modelled
//    as instantaneous at release time (the returned header has circulated
//    the whole ring, so every station has bid); the token then physically
//    walks hop-by-hop from the releasing station to the winner. A winner
//    identical to the releaser costs a full ring rotation, so the average
//    token-circulation cost matches the analysis' Theta/2.
//  * Standard variant: a free token is issued after every frame. Modified
//    variant: the sender keeps transmitting back-to-back frames while it is
//    still the highest-priority active station.
//  * Asynchronous traffic (optional, saturating or Poisson): lowest
//    priority; an async frame wins the token only when no synchronous
//    frame is pending, and once started it blocks later sync arrivals
//    until it completes — the priority-inversion blocking the analysis
//    bounds with B = 2*max(F, Theta).
//  * Deadline-monotonic priorities per *stream* (tighter effective
//    deadline = higher priority; identical to rate-monotonic in the
//    paper's implicit-deadline model). The paper hosts one
//    stream per station; this simulator accepts any number per station —
//    a station always contends with the highest priority among its pending
//    messages, exactly as the reservation field does.
//
// Medium motion is already lazy in this model: an idle ring schedules no
// events at all (the circulating free token's position is computed
// arithmetically when traffic appears — see maybe_capture_idle), so the
// PDP simulator needs no frontier source; both engine modes run the same
// typed-event path.
//
// The simulator is a validation substrate: message sets accepted by
// Theorem 4.1 must complete every message by its deadline here under
// worst-case phasing and saturating async load.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "tokenring/common/rng.hpp"
#include "tokenring/fault/plan.hpp"
#include "tokenring/msg/message_set.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/simulator.hpp"

namespace tokenring::sim {

/// One PDP token-ring simulation run over a message set. Built via
/// make_simulator (config.hpp); uses config.pdp, ignores config.ttp/ttrt/
/// sync_bandwidth_per_stream/engine.
class PdpSimulation final : public Simulation, private EventHandler {
 public:
  PdpSimulation(msg::MessageSet set, SimConfig config);

  /// Execute the run and return aggregate metrics.
  SimMetrics run() override;

 private:
  struct PendingMessage {
    Seconds arrival = 0.0;
    Bits remaining = 0.0;
  };
  struct LocalStream {
    msg::SyncStream spec;
    int priority = 0;  // global DM rank; smaller = more urgent
    Seconds phase = 0.0;
    std::deque<PendingMessage> queue;
  };
  struct Station {
    std::vector<LocalStream> streams;
    std::int64_t async_pending = 0;  // queued async frames (Poisson model)
    bool alive = true;               // false while crashed (bypassed)
  };

  /// Typed-event dispatch (the old per-event closures, one switch).
  void on_event(const Event& ev) override;

  void schedule_arrival(int station, std::size_t stream_idx, Seconds at);
  void on_arrival(int station, std::size_t stream_idx);
  /// Apply one fault from the plan with the 802.5 recovery model.
  void on_fault(const fault::FaultEvent& event);
  /// Kill the ring for `outage`, then re-arbitrate from the first alive
  /// station (destroys any in-flight frame/token via the generation bump).
  void ring_outage(fault::FaultKind kind, Seconds outage);
  void crash_station(int station);
  void rejoin_station(int station);
  /// Recompute Theta and the hop latency from the alive-station count
  /// (bypassed stations contribute no bit delay).
  void update_ring_timing();
  /// First alive station (recovery token holder); -1 when none remain.
  int first_alive() const;
  void schedule_async_arrival(int station);
  /// A station gained traffic while the ring may be idle: arrange capture.
  void maybe_capture_idle(int station);
  /// Best (lowest-rank) pending stream at `station`; -1 if none.
  int best_local_priority(const Station& st) const;
  /// Pick the station whose head frame should transmit next; sync first by
  /// priority, else (per the async model) an async-ready station after
  /// `after`.
  std::optional<int> pick_winner(int after, bool& is_async) const;
  /// Medium became free at `station`; arbitrate and launch the next frame.
  void release_medium(int station);
  void start_frame(int station, bool is_async);
  Seconds hops_time(int from, int to) const;

  msg::MessageSet set_;
  SimConfig cfg_;
  Simulator sim_;
  SimMetrics metrics_;
  Rng rng_;
  std::vector<Station> stations_;
  /// Fault plan expanded once; kFault events carry an index into this.
  std::vector<fault::FaultEvent> fault_events_;
  int active_count_ = 0;
  Seconds theta_ = 0.0;
  Seconds hop_ = 0.0;
  Seconds token_time_ = 0.0;
  bool medium_busy_ = false;
  /// Station that last started a frame; arbitration restarts from here
  /// after a corrupted frame's wasted slot.
  int medium_station_ = 0;
  /// Ring-dead-until time of the recovery in progress; faults landing
  /// inside it are absorbed (the ring is already down).
  Seconds recovering_until_ = 0.0;
  // Idle-token bookkeeping (only reachable when async is not saturating).
  bool capture_pending_ = false;
  int idle_position_ = 0;
  Seconds idle_since_ = 0.0;
  /// Incremented whenever a fault destroys the in-flight token or frame;
  /// stale medium events (walks, frame completions, idle captures) compare
  /// their generation and abort.
  std::uint64_t token_generation_ = 0;
};

}  // namespace tokenring::sim
