// Unified simulation entry point.
//
// One SimConfig struct configures either protocol simulator; the
// make_simulator factory (or the run_simulation one-shot) picks the model
// from `protocol` and fills in the TTP parameters the paper derives from
// the message set (TTRT by the selection rule, local-scheme synchronous
// bandwidths) when the config leaves them empty. This replaces the old
// per-protocol PdpSimConfig/TtpSimConfig structs and the direct
// PdpSimulation/TtpSimulation constructors.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/fault/plan.hpp"
#include "tokenring/msg/message_set.hpp"
#include "tokenring/sim/async.hpp"
#include "tokenring/sim/metrics.hpp"
#include "tokenring/sim/trace.hpp"

namespace tokenring::sim {

/// Which protocol model a SimConfig drives. The two 802.5 variants
/// (standard vs modified) are selected by `pdp.variant`.
enum class Protocol {
  kPdp,  ///< priority-driven protocol (IEEE 802.5), Section 4
  kTtp,  ///< timed-token protocol (FDDI), Section 5
};

/// How the engine materializes predictable token motion (TTP only; the PDP
/// model computes idle-token positions arithmetically in both modes).
enum class EngineMode {
  /// Token hops advance a lazily evaluated frontier time: no event is
  /// queued for the walk, and fully idle stretches of the ring can be
  /// skipped wholesale (see SimConfig::collect_rotation_stats). Default.
  kFrontier,
  /// Every token hop is a queued event, exactly like the original engine;
  /// kept as the differential-testing and benchmarking reference.
  kEager,
};

/// Default max-event guard installed when the config leaves `max_events`
/// at 0 — far above any legitimate run, so only genuine event storms trip
/// it.
inline constexpr std::size_t kDefaultMaxSimEvents = 50'000'000;

/// Simulation settings for either protocol. Protocol-specific fields are
/// ignored by the other model.
struct SimConfig {
  Protocol protocol = Protocol::kTtp;
  /// PDP ring/frame parameters and 802.5 variant (protocol == kPdp).
  analysis::PdpParams pdp;
  /// TTP ring/frame parameters (protocol == kTtp).
  analysis::TtpParams ttp;
  BitsPerSecond bandwidth = mbps(100);
  /// Negotiated TTRT [s] (TTP). <= 0 lets make_simulator pick it with the
  /// paper's selection rule (analysis::select_ttrt).
  Seconds ttrt = 0.0;
  /// Per-stream synchronous bandwidths h_i (TTP), aligned with the message
  /// set's stream order (NOT station-indexed: a station hosting several
  /// streams owns the sum of their allocations). Empty lets make_simulator
  /// allocate with the local scheme; unguaranteeable streams carry 0.
  std::vector<Seconds> sync_bandwidth_per_stream;
  /// Simulation horizon [s]. A few multiples of the longest period is
  /// enough to observe steady state under worst-case phasing.
  Seconds horizon = 1.0;
  /// true: adversarial phasing (PDP: all messages at the t=0 critical
  /// instant with an async frame already in flight; TTP: each message
  /// arrives just after the token leaves its station). false: random
  /// phases.
  bool worst_case_phasing = true;
  /// Asynchronous cross-traffic model. kSaturating matches the analyses'
  /// worst-case assumption.
  AsyncModel async_model = AsyncModel::kSaturating;
  /// Per-station Poisson arrival rate [frames/s]; used with kPoisson only.
  double async_frames_per_second = 0.0;
  /// Sporadic arrivals: extra uniform delay between releases, as a
  /// fraction of the period (inter-arrival in [P, (1+jitter)*P]). 0 =
  /// strictly periodic (the paper's model); the analyses stay valid upper
  /// bounds.
  double arrival_jitter = 0.0;
  /// Seed for random phasing, Poisson arrivals and sporadic jitter.
  std::uint64_t seed = 1;
  /// Optional event sink (see trace.hpp); null = no tracing. The sink must
  /// outlive the run and is invoked synchronously on the simulation
  /// thread.
  TraceSink* trace = nullptr;
  /// Failure injection; see fault/plan.hpp and the protocol recovery
  /// models in fault/recovery.hpp.
  fault::FaultPlan faults;
  /// Abort with EventStormError past this many simulation events; 0 picks
  /// the generous default guard (kDefaultMaxSimEvents).
  std::size_t max_events = 0;
  /// Event-engine mode; kFrontier unless differential-testing the walk.
  EngineMode engine = EngineMode::kFrontier;
  /// true (default): track token-rotation statistics (station-0 rotation
  /// times, per-station inter-visit maxima) exactly, which forces the
  /// frontier engine to step every visit of every rotation. false: skip
  /// rotation stats, allowing the frontier engine to fast-forward fully
  /// idle stretches of ring time in O(1) (TTP, async kNone, no trace sink
  /// only); completion metrics remain exact but are no longer guaranteed
  /// bit-identical to the eager walk (the skip replaces a chain of
  /// floating-point adds with one multiply).
  bool collect_rotation_stats = true;
};

/// A runnable protocol simulation built by make_simulator.
class Simulation {
 public:
  virtual ~Simulation() = default;
  /// Execute the run and return aggregate metrics.
  virtual SimMetrics run() = 0;
  /// Largest token inter-visit time observed at any station (TTP; valid
  /// after run(), 0 for PDP). Drives the Johnson-bound validation check.
  virtual Seconds max_intervisit() const { return 0.0; }
};

/// Build the simulator `config.protocol` selects. For TTP, fills an unset
/// TTRT with the paper's selection rule and an empty h_i vector with the
/// local allocation scheme. Streams may share stations; station indices
/// must lie in [0, ring.num_stations).
std::unique_ptr<Simulation> make_simulator(msg::MessageSet set,
                                           const SimConfig& config);

/// Convenience: build, run, and return metrics.
SimMetrics run_simulation(const msg::MessageSet& set, const SimConfig& config);

}  // namespace tokenring::sim
