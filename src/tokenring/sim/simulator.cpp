#include "tokenring/sim/simulator.hpp"

#include <limits>
#include <sstream>

#include "tokenring/common/checks.hpp"

namespace tokenring::sim {

void Simulator::schedule_in(Seconds delay, Event ev) {
  TR_EXPECTS(delay >= 0.0);
  queue_.push(now_ + delay, ev);
}

void Simulator::schedule_at(Seconds at, Event ev) {
  TR_EXPECTS_MSG(at >= now_, "cannot schedule into the past");
  queue_.push(at, ev);
}

std::size_t Simulator::run_until(Seconds horizon) {
  constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();
  std::size_t count = 0;
  for (;;) {
    const Seconds qt = queue_.empty() ? kInf : queue_.next_time();
    const Seconds ft = frontier_ ? frontier_->frontier_time() : kInf;
    // Queue events win ties: a fault landing at the same instant as the
    // frontier's token arrival must destroy the token first.
    const bool from_queue = qt <= ft;
    const Seconds t = from_queue ? qt : ft;
    if (!(t <= horizon)) break;  // also exits on both-infinite
    if (max_events_ != 0 && executed_ >= max_events_) {
      std::ostringstream os;
      os << "simulation exceeded the max-event guard (" << max_events_
         << " events) at t=" << now_ << " s with " << queue_.size()
         << " events still queued; a model bug or fault scenario is "
            "scheduling an event storm";
      throw EventStormError(os.str());
    }
    now_ = t;
    if (from_queue) {
      const Event ev = queue_.pop();
      TR_EXPECTS_MSG(handler_ != nullptr, "no event handler installed");
      handler_->on_event(ev);
    } else {
      frontier_->advance_frontier();
    }
    ++count;
    ++executed_;
  }
  if (now_ < horizon) now_ = horizon;
  return count;
}

}  // namespace tokenring::sim
