#include "tokenring/sim/simulator.hpp"

#include <sstream>
#include <utility>

#include "tokenring/common/checks.hpp"

namespace tokenring::sim {

void Simulator::schedule_in(Seconds delay, EventFn fn) {
  TR_EXPECTS(delay >= 0.0);
  queue_.push(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(Seconds at, EventFn fn) {
  TR_EXPECTS_MSG(at >= now_, "cannot schedule into the past");
  queue_.push(at, std::move(fn));
}

std::size_t Simulator::run_until(Seconds horizon) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= horizon) {
    if (max_events_ != 0 && executed_ >= max_events_) {
      std::ostringstream os;
      os << "simulation exceeded the max-event guard (" << max_events_
         << " events) at t=" << now_ << " s with " << queue_.size()
         << " events still queued; a model bug or fault scenario is "
            "scheduling an event storm";
      throw EventStormError(os.str());
    }
    auto [at, fn] = queue_.pop();
    now_ = at;
    fn();
    ++count;
    ++executed_;
  }
  if (queue_.empty() || now_ < horizon) now_ = horizon;
  return count;
}

}  // namespace tokenring::sim
