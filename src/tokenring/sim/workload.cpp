#include "tokenring/sim/workload.hpp"

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/common/checks.hpp"

namespace tokenring::sim {

SimConfig make_sim_config(const msg::MessageSet& set,
                          const analysis::TtpParams& params, BitsPerSecond bw,
                          double horizon_periods) {
  TR_EXPECTS(!set.empty());
  TR_EXPECTS(horizon_periods > 0.0);
  SimConfig cfg;
  cfg.protocol = Protocol::kTtp;
  cfg.ttp = params;
  cfg.bandwidth = bw;
  cfg.ttrt = analysis::select_ttrt(set, params.ring, bw);
  cfg.horizon = horizon_periods * set.max_period();
  cfg.sync_bandwidth_per_stream.reserve(set.size());
  for (const auto& s : set.streams()) {
    cfg.sync_bandwidth_per_stream.push_back(
        analysis::ttp_local_bandwidth(s, params, bw, cfg.ttrt).value_or(0.0));
  }
  return cfg;
}

SimConfig make_sim_config(const msg::MessageSet& set,
                          const analysis::PdpParams& params, BitsPerSecond bw,
                          double horizon_periods) {
  TR_EXPECTS(!set.empty());
  TR_EXPECTS(horizon_periods > 0.0);
  SimConfig cfg;
  cfg.protocol = Protocol::kPdp;
  cfg.pdp = params;
  cfg.bandwidth = bw;
  cfg.horizon = horizon_periods * set.max_period();
  return cfg;
}

}  // namespace tokenring::sim
