// Helpers turning analysis artifacts into ready-to-run simulation configs.
//
// Building a SimConfig by hand means selecting a TTRT, allocating
// synchronous bandwidths station by station, and sizing the horizon — the
// same boilerplate in every test, study and example. These helpers do it in
// one call, with the paper's parameter rules.

#pragma once

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/msg/message_set.hpp"
#include "tokenring/sim/config.hpp"

namespace tokenring::sim {

/// Build a TTP simulation config for `set`: TTRT from the paper's rule,
/// local-scheme synchronous bandwidths (0 for unguaranteeable streams),
/// horizon = `horizon_periods` * max period. Phasing/async/trace/engine
/// fields are left at their adversarial defaults and can be adjusted
/// afterwards.
SimConfig make_sim_config(const msg::MessageSet& set,
                          const analysis::TtpParams& params, BitsPerSecond bw,
                          double horizon_periods = 4.0);

/// Build a PDP simulation config for `set` with the same conventions.
SimConfig make_sim_config(const msg::MessageSet& set,
                          const analysis::PdpParams& params, BitsPerSecond bw,
                          double horizon_periods = 4.0);

}  // namespace tokenring::sim
