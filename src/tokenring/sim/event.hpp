// Typed simulation events.
//
// The event engine used to schedule `std::function<void()>` closures: every
// push heap-allocated a capture block and the scheduler knew nothing about
// what it was firing. Events are now a flat tagged struct: the scheduler
// pools them (no per-event allocation), validation errors can name the
// event kind, and the protocol simulators dispatch on the tag in one
// switch instead of re-capturing their state per event.

#pragma once

#include <cstdint>

#include "tokenring/common/units.hpp"

namespace tokenring::sim {

/// What an Event means to its handler. The k{Pdp,Ttp} kinds are dispatched
/// by the respective simulation's on_event; kUser is free for engine tests
/// and ad-hoc schedules.
enum class EventKind : std::uint8_t {
  /// Generic event; `index`/`value` carry whatever the test wants.
  kUser,
  /// Initial medium/token kickoff at t=0 (`station` = kickoff station).
  kKickoff,
  /// Apply fault plan entry `index` (both protocols).
  kFault,
  /// Ring recovery completed; re-issue the token / re-arbitrate
  /// (generation-guarded, both protocols).
  kRecovery,
  /// Corrupted frame's wasted slot elapsed; retransmit from where the
  /// medium/token stood (generation-guarded, both protocols).
  kCorruptionRetry,
  /// TTP token arrives at `station` (eager engine only; the frontier
  /// engine advances the token without materializing hop events).
  kTtpTokenHop,
  /// PDP synchronous release of stream `index` at `station`.
  kPdpArrival,
  /// PDP Poisson async frame arrival at `station`.
  kPdpAsyncArrival,
  /// PDP idle-token capture completes at `station` (generation-guarded).
  kPdpIdleCapture,
  /// PDP token walk reached winner `station`; `index` != 0 means the
  /// winner transmits an async frame (generation-guarded).
  kPdpWalkDone,
  /// PDP sync frame's last bit sent: `station`, stream slot `index`,
  /// `value` = chunk bits (generation-guarded).
  kPdpSyncFrameDone,
  /// PDP async frame's last bit sent: `station`, `value` = effective
  /// medium occupancy [s] (generation-guarded).
  kPdpAsyncFrameDone,
};

/// Display name for an event kind (used by SIM_CHECK messages).
const char* to_string(EventKind kind);

/// One scheduled event. Flat POD: the queue pools these by value, so an
/// event costs no allocation and carries no destructor. `at`/`seq` are
/// assigned by the queue at push; the remaining fields are the payload the
/// handler switches on (unused fields keep their defaults).
struct Event {
  Seconds at = 0.0;       ///< absolute firing time, set by the queue
  std::uint64_t seq = 0;  ///< FIFO tie-break within equal `at`, set by the queue
  EventKind kind = EventKind::kUser;
  std::int32_t station = -1;  ///< primary station operand
  std::int32_t index = -1;    ///< stream slot / fault-plan index
  std::uint64_t gen = 0;      ///< token generation the event belongs to
  double value = 0.0;         ///< kind-specific scalar (bits or seconds)
};

}  // namespace tokenring::sim
