// Discrete-event simulation of the timed-token protocol (FDDI MAC) — paper
// Section 5.1.
//
// Faithful to the Grow/Johnson timer rules:
//  * Every station runs a token-rotation timer TRT initialized to TTRT.
//  * Token arrives early (TRT not yet expired): the earliness becomes the
//    asynchronous budget (THT); TRT restarts at TTRT.
//  * Token arrives late (TRT expired; Late_Ct was set): Late_Ct clears, TRT
//    keeps running, no asynchronous transmission this visit.
//  * Synchronous transmission is always allowed; each stream hosted by the
//    station may use at most its own synchronous bandwidth h_i per visit,
//    and every distinct message chunk sent in a visit is one frame paying
//    the frame overhead.
//  * Asynchronous frames may start while THT budget remains; a started
//    frame always completes (asynchronous overrun).
//  * Passing the token to the downstream neighbour costs one hop latency;
//    one token transmission is charged per lap, so an idle rotation sums
//    to Theta, matching the analysis.
//
// Engine modes (SimConfig::engine):
//  * kFrontier (default): the token walk is a FrontierSource — the next
//    arrival is a (time, station) pair advanced in place, so a hop costs
//    no queue traffic and no allocation. Every visit performs bit-for-bit
//    the same arithmetic (and RNG draws) as the eager walk, so metrics and
//    traces are identical. With rotation statistics disabled
//    (collect_rotation_stats = false, async kNone, no trace sink) the walk
//    additionally fast-forwards whole idle laps in O(1) whenever no
//    message is queued anywhere — the huge-ring/long-horizon mode.
//  * kEager: every hop is a typed kTtpTokenHop event through the calendar
//    queue — the original engine's shape, kept as the differential-test
//    and benchmark reference.
//
// The paper's model hosts exactly one stream per station; this simulator
// generalizes to any number (including zero) of streams per station — the
// schedulability analyses never depended on the restriction.
//
// Validation role: sets accepted by Theorem 5.1 with the local allocation
// must meet every deadline here, under adversarial phasing (each message
// arrives just after the token left its station) and saturating
// asynchronous load; and Johnson's bound (inter-visit time <= 2*TTRT) must
// hold station-wise.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "tokenring/common/rng.hpp"
#include "tokenring/fault/plan.hpp"
#include "tokenring/msg/message_set.hpp"
#include "tokenring/sim/config.hpp"
#include "tokenring/sim/simulator.hpp"

namespace tokenring::sim {

/// One FDDI timed-token simulation run. Built via make_simulator
/// (config.hpp), which fills unset ttrt/sync_bandwidth_per_stream; uses
/// config.ttp, ignores config.pdp.
class TtpSimulation final : public Simulation,
                            private EventHandler,
                            private FrontierSource {
 public:
  /// Requires ttrt > 0 and sync_bandwidth_per_stream aligned with the
  /// set's streams (make_simulator guarantees both).
  TtpSimulation(msg::MessageSet set, SimConfig config);

  /// Execute the run and return aggregate metrics. `token_rotation` holds
  /// station-0 inter-visit times; `max_intervisit()` is tracked across all
  /// stations for the Johnson-bound check.
  SimMetrics run() override;

  /// Largest token inter-visit time observed at any station (valid after
  /// run(); requires collect_rotation_stats, which is the default).
  Seconds max_intervisit() const override { return max_intervisit_; }

 private:
  struct PendingMessage {
    Seconds arrival = 0.0;
    Bits remaining = 0.0;
  };
  struct LocalStream {
    msg::SyncStream spec;
    Seconds h = 0.0;            // synchronous bandwidth per visit
    Seconds phase = 0.0;        // first release time
    Seconds next_release = 0.0; // lazily materialized arrivals
    std::deque<PendingMessage> queue;
  };
  struct Station {
    std::vector<LocalStream> streams;
    Seconds trt_expiry = 0.0;   // absolute time the rotation timer expires
    Seconds last_visit = -1.0;
    std::int64_t async_pending = 0;   // queued async frames (Poisson)
    Seconds next_async_arrival = 0.0; // next Poisson arrival time
    bool alive = true;                // false while crashed (bypassed)
  };

  /// Typed-event dispatch (faults, kickoff, recovery, eager token hops).
  void on_event(const Event& ev) override;
  /// FrontierSource: the token's next arrival, advanced lazily.
  Seconds frontier_time() const override;
  void advance_frontier() override;

  void on_token_arrival(int station, std::uint64_t generation);
  /// Hand the token to `next`, `delay` seconds from now: a queued
  /// kTtpTokenHop event (eager) or a frontier update (frontier). The
  /// frontier path may fast-forward whole idle laps (see hibernate_ok_).
  void pass_token(int next, Seconds delay);
  /// Apply one fault from the plan with the FDDI recovery model.
  void on_fault(const fault::FaultEvent& event);
  /// Kill the ring for `outage`, then re-initialize: every TRT restarts and
  /// the first alive station issues a fresh token (any in-flight token
  /// event aborts via the generation bump).
  void ring_outage(fault::FaultKind kind, Seconds outage);
  void crash_station(int station);
  void rejoin_station(int station);
  /// Recompute the hop latency from the alive-station count (bypassed
  /// stations contribute no bit delay).
  void update_ring_timing();
  /// First alive station (claim winner / recovery token issuer); -1 when
  /// none remain.
  int first_alive() const;
  /// Release every message due at or before `now` at this station (and,
  /// under the Poisson model, every async frame arrival up to `now`). With
  /// `enqueue` false the release cadence (and its RNG draws) advances but
  /// nothing is queued — used to discard a crashed station's arrivals at
  /// rejoin without disturbing determinism.
  void materialize_arrivals(int station, Station& st, Seconds now,
                            bool enqueue);
  /// Serve one stream's queue for at most its per-visit bandwidth, starting
  /// `offset` seconds into the visit; returns time consumed.
  Seconds serve_stream(int station, LocalStream& stream, Seconds offset);

  msg::MessageSet set_;
  SimConfig cfg_;
  Simulator sim_;
  SimMetrics metrics_;
  Rng rng_;
  std::vector<Station> stations_;
  /// Fault plan expanded once; kFault events carry an index into this.
  std::vector<fault::FaultEvent> fault_events_;
  int active_count_ = 0;
  Seconds hop_ = 0.0;
  Seconds token_time_ = 0.0;
  Seconds f_ovhd_ = 0.0;
  Seconds f_async_ = 0.0;
  Seconds max_intervisit_ = 0.0;
  /// Station the token is (or was) heading to; a corrupted frame's visit is
  /// re-run by re-issuing the token here after the wasted slot.
  int next_station_ = 0;
  /// Ring-dead-until time of the recovery in progress; faults landing
  /// inside it are absorbed (the ring is already down).
  Seconds recovering_until_ = 0.0;
  /// Incremented whenever a fault destroys the circulating token; stale
  /// in-flight token-pass events (or a stale frontier) compare their
  /// captured generation and abort.
  std::uint64_t token_generation_ = 0;
  // Frontier state (engine == kFrontier): the token's next arrival.
  bool token_live_ = false;
  Seconds token_at_ = 0.0;
  int token_next_ = 0;
  std::uint64_t token_gen_ = 0;
  /// Idle-lap fast-forward is legal for this run (frontier engine, async
  /// kNone, no trace sink, rotation stats off).
  bool hibernate_ok_ = false;
  /// Synchronous messages queued anywhere on the ring (hibernation gate).
  std::size_t total_queued_ = 0;
};

}  // namespace tokenring::sim
