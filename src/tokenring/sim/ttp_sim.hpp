// Discrete-event simulation of the timed-token protocol (FDDI MAC) — paper
// Section 5.1.
//
// Faithful to the Grow/Johnson timer rules:
//  * Every station runs a token-rotation timer TRT initialized to TTRT.
//  * Token arrives early (TRT not yet expired): the earliness becomes the
//    asynchronous budget (THT); TRT restarts at TTRT.
//  * Token arrives late (TRT expired; Late_Ct was set): Late_Ct clears, TRT
//    keeps running, no asynchronous transmission this visit.
//  * Synchronous transmission is always allowed; each stream hosted by the
//    station may use at most its own synchronous bandwidth h_i per visit,
//    and every distinct message chunk sent in a visit is one frame paying
//    the frame overhead.
//  * Asynchronous frames may start while THT budget remains; a started
//    frame always completes (asynchronous overrun).
//  * Passing the token to the downstream neighbour costs one hop latency;
//    one token transmission is charged per lap, so an idle rotation sums
//    to Theta, matching the analysis.
//
// The paper's model hosts exactly one stream per station; this simulator
// generalizes to any number (including zero) of streams per station — the
// schedulability analyses never depended on the restriction.
//
// Validation role: sets accepted by Theorem 5.1 with the local allocation
// must meet every deadline here, under adversarial phasing (each message
// arrives just after the token left its station) and saturating
// asynchronous load; and Johnson's bound (inter-visit time <= 2*TTRT) must
// hold station-wise.

#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "tokenring/analysis/ttp.hpp"
#include "tokenring/common/rng.hpp"
#include "tokenring/fault/plan.hpp"
#include "tokenring/msg/message_set.hpp"
#include "tokenring/sim/async.hpp"
#include "tokenring/sim/metrics.hpp"
#include "tokenring/sim/simulator.hpp"
#include "tokenring/sim/trace.hpp"

namespace tokenring::sim {

/// Simulation settings for a TTP run.
struct TtpSimConfig {
  analysis::TtpParams params;
  BitsPerSecond bandwidth = mbps(100);
  /// Negotiated TTRT [s] (use analysis::select_ttrt for the paper's rule).
  Seconds ttrt = 0.0;
  /// Per-stream synchronous bandwidths h_i, aligned with the message set's
  /// stream order (NOT station-indexed: a station hosting several streams
  /// owns the sum of their allocations). Unguaranteeable streams carry 0.
  std::vector<Seconds> sync_bandwidth_per_stream;
  Seconds horizon = 1.0;
  /// true: each message arrives just after the token leaves its station
  /// (maximizes waiting); false: random phases.
  bool worst_case_phasing = true;
  /// Asynchronous cross-traffic model. kSaturating matches the analysis'
  /// worst-case assumption (async consumes every earliness budget).
  AsyncModel async_model = AsyncModel::kSaturating;
  /// Per-station Poisson arrival rate [frames/s]; used with kPoisson only.
  double async_frames_per_second = 0.0;
  /// Sporadic arrivals: extra uniform delay between releases, as a fraction
  /// of the period (inter-arrival in [P, (1+jitter)*P]). 0 = strictly
  /// periodic (the paper's model); the analyses stay valid upper bounds.
  double arrival_jitter = 0.0;
  std::uint64_t seed = 1;
  /// Optional event sink (see trace.hpp); null = no tracing. The sink must
  /// outlive the run and is invoked synchronously on the simulation thread.
  TraceSink* trace = nullptr;
  /// Failure injection: every fault in the plan is applied with the FDDI
  /// recovery machinery (fault/recovery.hpp). Token loss is detected when a
  /// rotation timer expires with Late_Ct already set (up to 2*TTRT after
  /// the loss), then the claim process re-initializes the ring; all TRT
  /// timers restart when the new token is issued. A corrupted frame's visit
  /// slot is wasted and retransmitted; a crashed station is bypassed (its
  /// queue is lost) until its rejoin, each reconfiguration costing one
  /// claim recovery.
  fault::FaultPlan faults;
  /// Abort with EventStormError past this many simulation events; 0 picks
  /// the generous default guard (kDefaultMaxSimEvents in pdp_sim.hpp).
  std::size_t max_events = 0;
};

/// One FDDI timed-token simulation run.
class TtpSimulation {
 public:
  TtpSimulation(msg::MessageSet set, TtpSimConfig config);

  /// Execute the run and return aggregate metrics. `token_rotation` holds
  /// station-0 inter-visit times; `max_intervisit()` is tracked across all
  /// stations for the Johnson-bound check.
  SimMetrics run();

  /// Largest token inter-visit time observed at any station (valid after
  /// run()).
  Seconds max_intervisit() const { return max_intervisit_; }

 private:
  struct PendingMessage {
    Seconds arrival = 0.0;
    Bits remaining = 0.0;
  };
  struct LocalStream {
    msg::SyncStream spec;
    Seconds h = 0.0;            // synchronous bandwidth per visit
    Seconds phase = 0.0;        // first release time
    Seconds next_release = 0.0; // lazily materialized arrivals
    std::deque<PendingMessage> queue;
  };
  struct Station {
    std::vector<LocalStream> streams;
    Seconds trt_expiry = 0.0;   // absolute time the rotation timer expires
    Seconds last_visit = -1.0;
    std::int64_t async_pending = 0;   // queued async frames (Poisson)
    Seconds next_async_arrival = 0.0; // next Poisson arrival time
    bool alive = true;                // false while crashed (bypassed)
  };

  void on_token_arrival(int station, std::uint64_t generation);
  /// Apply one fault from the plan with the FDDI recovery model.
  void on_fault(const fault::FaultEvent& event);
  /// Kill the ring for `outage`, then re-initialize: every TRT restarts and
  /// the first alive station issues a fresh token (any in-flight token
  /// event aborts via the generation bump).
  void ring_outage(fault::FaultKind kind, Seconds outage);
  void crash_station(int station);
  void rejoin_station(int station);
  /// Recompute the hop latency from the alive-station count (bypassed
  /// stations contribute no bit delay).
  void update_ring_timing();
  /// First alive station (claim winner / recovery token issuer); -1 when
  /// none remain.
  int first_alive() const;
  /// Release every message due at or before `now` at this station (and,
  /// under the Poisson model, every async frame arrival up to `now`). With
  /// `enqueue` false the release cadence (and its RNG draws) advances but
  /// nothing is queued — used to discard a crashed station's arrivals at
  /// rejoin without disturbing determinism.
  void materialize_arrivals(int station, Station& st, Seconds now,
                            bool enqueue);
  /// Serve one stream's queue for at most its per-visit bandwidth, starting
  /// `offset` seconds into the visit; returns time consumed.
  Seconds serve_stream(int station, LocalStream& stream, Seconds offset);
  void emit(TraceEventKind kind, int station, double detail) const;

  msg::MessageSet set_;
  TtpSimConfig cfg_;
  Simulator sim_;
  SimMetrics metrics_;
  Rng rng_;
  std::vector<Station> stations_;
  int active_count_ = 0;
  Seconds hop_ = 0.0;
  Seconds token_time_ = 0.0;
  Seconds f_ovhd_ = 0.0;
  Seconds f_async_ = 0.0;
  Seconds max_intervisit_ = 0.0;
  /// Station the token is (or was) heading to; a corrupted frame's visit is
  /// re-run by re-issuing the token here after the wasted slot.
  int next_station_ = 0;
  /// Ring-dead-until time of the recovery in progress; faults landing
  /// inside it are absorbed (the ring is already down).
  Seconds recovering_until_ = 0.0;
  /// Incremented whenever a fault destroys the circulating token; stale
  /// in-flight token-pass events compare their captured generation and
  /// abort.
  std::uint64_t token_generation_ = 0;
};

/// Convenience wrapper: selects TTRT by the paper rule and allocates with
/// the local scheme when the config leaves those fields empty. Streams with
/// q_i < 2 receive h_i = 0.
SimMetrics run_ttp_simulation(const msg::MessageSet& set,
                              const TtpSimConfig& config);

}  // namespace tokenring::sim
