#include "tokenring/sim/ttp_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tokenring/common/checks.hpp"
#include "tokenring/fault/recovery.hpp"

namespace tokenring::sim {

namespace {
constexpr Seconds kDeadlineSlack = 1e-12;
}  // namespace

TtpSimulation::TtpSimulation(msg::MessageSet set, SimConfig config)
    : set_(std::move(set)), cfg_(std::move(config)), rng_(cfg_.seed) {
  cfg_.ttp.validate();
  set_.validate();
  TR_EXPECTS(cfg_.bandwidth > 0.0);
  TR_EXPECTS(cfg_.ttrt > 0.0);
  TR_EXPECTS(cfg_.horizon > 0.0);
  if (cfg_.async_model == AsyncModel::kPoisson) {
    TR_EXPECTS_MSG(cfg_.async_frames_per_second > 0.0,
                   "Poisson async model needs a positive rate");
  }
  TR_EXPECTS(cfg_.arrival_jitter >= 0.0);

  const int n = cfg_.ttp.ring.num_stations;
  cfg_.faults.validate(n);
  TR_EXPECTS_MSG(
      cfg_.sync_bandwidth_per_stream.size() == set_.size(),
      "sync_bandwidth_per_stream must align with the message set's streams");

  stations_.resize(static_cast<std::size_t>(n));
  active_count_ = n;
  for (std::size_t i = 0; i < set_.size(); ++i) {
    const auto& s = set_[i];
    TR_EXPECTS_MSG(s.station >= 0 && s.station < n,
                   "stream station out of ring range");
    TR_EXPECTS(cfg_.sync_bandwidth_per_stream[i] >= 0.0);
    LocalStream local;
    local.spec = s;
    local.h = cfg_.sync_bandwidth_per_stream[i];
    stations_[static_cast<std::size_t>(s.station)].streams.push_back(local);
  }

  token_time_ = cfg_.ttp.ring.token_time(cfg_.bandwidth);
  f_ovhd_ = cfg_.ttp.frame.overhead_time(cfg_.bandwidth);
  f_async_ = cfg_.ttp.async_frame.frame_time(cfg_.bandwidth);
  update_ring_timing();

  // Idle-lap fast-forward replaces a chain of per-visit adds with one
  // multiply, so it is reserved for runs that opted out of exact rotation
  // statistics and have nothing observable happening on an idle lap.
  hibernate_ok_ = cfg_.engine == EngineMode::kFrontier &&
                  !cfg_.collect_rotation_stats &&
                  cfg_.async_model == AsyncModel::kNone &&
                  cfg_.trace == nullptr;

  sim_.set_handler(this);
  if (cfg_.engine == EngineMode::kFrontier) sim_.set_frontier(this);
}

void TtpSimulation::update_ring_timing() {
  // Bypassed stations contribute no ring-interface bit delay; the cable
  // and hop positions remain.
  const auto& ring = cfg_.ttp.ring;
  const Seconds walk =
      ring.propagation_delay() + static_cast<double>(active_count_) *
                                     ring.per_station_bit_delay /
                                     cfg_.bandwidth;
  hop_ = walk / static_cast<double>(ring.num_stations);
}

int TtpSimulation::first_alive() const {
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (stations_[i].alive) return static_cast<int>(i);
  }
  return -1;
}

void TtpSimulation::on_event(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kTtpTokenHop:
      on_token_arrival(ev.station, ev.gen);
      return;
    case EventKind::kFault:
      on_fault(fault_events_[static_cast<std::size_t>(ev.index)]);
      return;
    case EventKind::kRecovery: {
      if (ev.gen != token_generation_) return;  // superseded by newer fault
      const int resume = first_alive();
      if (resume < 0) return;  // every station crashed: the ring stays dark
      // Ring re-initialization: every rotation timer restarts and the
      // claim winner issues a fresh token.
      for (auto& st : stations_) st.trt_expiry = sim_.now() + cfg_.ttrt;
      next_station_ = resume;
      on_token_arrival(resume, token_generation_);
      return;
    }
    case EventKind::kCorruptionRetry:
      if (ev.gen != token_generation_) return;
      on_token_arrival(next_station_, token_generation_);
      return;
    case EventKind::kKickoff:
      on_token_arrival(0, ev.gen);
      return;
    case EventKind::kUser:
    case EventKind::kPdpArrival:
    case EventKind::kPdpAsyncArrival:
    case EventKind::kPdpIdleCapture:
    case EventKind::kPdpWalkDone:
    case EventKind::kPdpSyncFrameDone:
    case EventKind::kPdpAsyncFrameDone:
      TR_EXPECTS_MSG(false, "event kind not handled by the TTP simulator");
      return;
  }
}

Seconds TtpSimulation::frontier_time() const {
  return token_live_ ? token_at_ : std::numeric_limits<Seconds>::infinity();
}

void TtpSimulation::advance_frontier() {
  // Disarm first: if the generation went stale (a fault destroyed the
  // token) the visit below aborts without re-arming, exactly like a stale
  // queued hop event popping to a no-op.
  token_live_ = false;
  on_token_arrival(token_next_, token_gen_);
}

void TtpSimulation::pass_token(int next, Seconds delay) {
  next_station_ = next;
  if (cfg_.engine == EngineMode::kEager) {
    Event ev;
    ev.kind = EventKind::kTtpTokenHop;
    ev.station = next;
    ev.gen = token_generation_;
    sim_.schedule_in(delay, ev);
    return;
  }
  token_live_ = true;
  token_at_ = sim_.now() + delay;
  token_next_ = next;
  token_gen_ = token_generation_;

  // Idle-lap fast-forward: once per lap (at the wrap to station 0), if no
  // message is queued anywhere, skip whole laps until just before the next
  // release (or past the horizon). Pending fault events are unaffected —
  // the engine still fires them first, and their generation bump discards
  // this frontier.
  if (hibernate_ok_ && next == 0 && total_queued_ == 0) {
    Seconds next_wake = std::numeric_limits<Seconds>::infinity();
    for (const auto& st : stations_) {
      if (!st.alive) continue;
      for (const auto& local : st.streams) {
        next_wake = std::min(next_wake, local.next_release);
      }
    }
    const Seconds lap =
        static_cast<double>(cfg_.ttp.ring.num_stations) * hop_ + token_time_;
    if (lap <= 0.0) return;
    double laps;
    if (next_wake > cfg_.horizon) {
      // Nothing left to serve: jump past the horizon and end the run.
      laps = std::floor((cfg_.horizon - token_at_) / lap) + 1.0;
    } else {
      laps = std::floor((next_wake - token_at_) / lap);
    }
    if (laps > 0.0) token_at_ += laps * lap;
  }
}

void TtpSimulation::materialize_arrivals(int station, Station& st,
                                         Seconds now, bool enqueue) {
  for (auto& local : st.streams) {
    while (local.next_release <= now && local.next_release <= cfg_.horizon) {
      if (enqueue) {
        local.queue.push_back(
            PendingMessage{local.next_release, local.spec.payload_bits});
        ++total_queued_;
        metrics_.on_release(station);
        metrics_.on_queue_depth(local.queue.size());
        emit(cfg_.trace, local.next_release, TraceEventKind::kMessageArrival,
             station, local.spec.payload_bits);
      }
      local.next_release += local.spec.period;
      if (cfg_.arrival_jitter > 0.0) {
        local.next_release +=
            rng_.uniform(0.0, cfg_.arrival_jitter) * local.spec.period;
      }
    }
  }
  if (cfg_.async_model == AsyncModel::kPoisson) {
    while (st.next_async_arrival <= now) {
      if (enqueue) ++st.async_pending;
      st.next_async_arrival +=
          rng_.exponential(1.0 / cfg_.async_frames_per_second);
    }
  }
}

Seconds TtpSimulation::serve_stream(int station, LocalStream& stream,
                                    Seconds offset) {
  const Seconds budget = stream.h;
  Seconds used = 0.0;
  // Each chunk of one message sent in this visit is one frame: it pays the
  // frame overhead and must fit in the stream's remaining budget.
  while (!stream.queue.empty() && budget - used > f_ovhd_) {
    auto& head = stream.queue.front();
    const Seconds payload_budget = budget - used - f_ovhd_;
    const Seconds payload_needed =
        transmission_time(head.remaining, cfg_.bandwidth);
    const Seconds sent = std::min(payload_needed, payload_budget);
    if (sent <= 0.0) break;
    used += sent + f_ovhd_;
    head.remaining -= sent * cfg_.bandwidth;
    // Completion threshold scales with the message: time<->bits round trips
    // accumulate relative rounding across hundreds of visits, and a
    // sub-bit residue must not cost a whole extra token rotation.
    const Bits completion_slack = 1e-9 + 1e-12 * stream.spec.payload_bits;
    if (head.remaining <= completion_slack) {
      const Seconds completion = sim_.now() + offset + used;
      const Seconds response = completion - head.arrival;
      const Seconds deadline = stream.spec.deadline();
      metrics_.on_completion(station, head.arrival, response,
                             stream.spec.period, deadline, kDeadlineSlack);
      emit(cfg_.trace, completion, TraceEventKind::kMessageComplete, station,
           response);
      if (response > deadline + kDeadlineSlack) {
        emit(cfg_.trace, completion, TraceEventKind::kDeadlineMiss, station,
             response);
      }
      stream.queue.pop_front();
      --total_queued_;
    } else {
      break;  // budget exhausted mid-message
    }
  }
  return used;
}

void TtpSimulation::ring_outage(fault::FaultKind kind, Seconds outage) {
  // Destroy the circulating token: stale pass events (or a stale frontier)
  // abort via generation.
  ++token_generation_;
  const Seconds now = sim_.now();
  recovering_until_ = std::max(recovering_until_, now + outage);
  metrics_.on_fault(kind, now, now + outage);
  Event ev;
  ev.kind = EventKind::kRecovery;
  ev.gen = token_generation_;
  sim_.schedule_in(outage, ev);
}

void TtpSimulation::crash_station(int station) {
  auto& st = stations_[static_cast<std::size_t>(station)];
  if (!st.alive) {  // already down: nothing further to break
    metrics_.on_fault(fault::FaultKind::kStationCrash, sim_.now(), sim_.now());
    return;
  }
  const Seconds now = sim_.now();
  // Messages already released (even if not yet lazily materialized) die
  // with the station's buffers.
  materialize_arrivals(station, st, now, /*enqueue=*/true);
  st.alive = false;
  st.async_pending = 0;
  --active_count_;
  update_ring_timing();
  // Record the outage before abandoning the queue so those misses
  // attribute to the crash.
  ring_outage(fault::FaultKind::kStationCrash,
              fault::ttp_reconfiguration_outage(cfg_.ttp, cfg_.bandwidth));
  for (auto& local : st.streams) {
    for (const auto& m : local.queue) {
      if (m.arrival + local.spec.deadline() <= cfg_.horizon) {
        metrics_.on_abandoned_miss(station, m.arrival, local.spec.deadline());
      }
    }
    total_queued_ -= local.queue.size();
    local.queue.clear();
  }
}

void TtpSimulation::rejoin_station(int station) {
  auto& st = stations_[static_cast<std::size_t>(station)];
  if (st.alive) {  // never crashed (or already back): nothing to insert
    metrics_.on_fault(fault::FaultKind::kStationRejoin, sim_.now(),
                      sim_.now());
    return;
  }
  // Releases that fell inside the downtime never happened for the dead
  // host; advance the cadence past them without queueing.
  materialize_arrivals(station, st, sim_.now(), /*enqueue=*/false);
  st.alive = true;
  ++active_count_;
  update_ring_timing();
  // Ring insertion disrupts the ring like a break: claim recovery again.
  ring_outage(fault::FaultKind::kStationRejoin,
              fault::ttp_reconfiguration_outage(cfg_.ttp, cfg_.bandwidth));
}

void TtpSimulation::on_fault(const fault::FaultEvent& event) {
  const Seconds now = sim_.now();
  switch (event.kind) {
    case fault::FaultKind::kTokenLoss:
      ring_outage(event.kind, fault::ttp_token_loss_outage(
                                  cfg_.ttp, cfg_.bandwidth, cfg_.ttrt));
      return;
    case fault::FaultKind::kNoiseBurst:
      // The noise destroys the token (or whatever frame carried it) and
      // jams the medium for its duration before detection can even start.
      ring_outage(event.kind,
                  event.duration + fault::ttp_token_loss_outage(
                                       cfg_.ttp, cfg_.bandwidth, cfg_.ttrt));
      return;
    case fault::FaultKind::kDuplicateToken:
      ring_outage(event.kind, fault::ttp_duplicate_outage(cfg_.ttp,
                                                          cfg_.bandwidth));
      return;
    case fault::FaultKind::kFrameCorruption: {
      if (now < recovering_until_) {
        // The ring is already down recovering: the fault is absorbed.
        metrics_.on_fault(event.kind, now, now);
        return;
      }
      // One frame's slot is wasted; the sender sees the bad FCS on the
      // returning frame and retransmits within the penalty. Modelled as the
      // visit in progress being re-run: the token re-appears where it was
      // heading after one max-size frame of wasted medium time. Payload
      // already marked delivered in that visit stays delivered — the
      // retransmission is exactly the wasted slot.
      ++token_generation_;
      const Seconds penalty =
          fault::ttp_corruption_outage(cfg_.ttp, cfg_.bandwidth);
      recovering_until_ = std::max(recovering_until_, now + penalty);
      metrics_.on_fault(event.kind, now, now + penalty);
      Event ev;
      ev.kind = EventKind::kCorruptionRetry;
      ev.gen = token_generation_;
      sim_.schedule_in(penalty, ev);
      return;
    }
    case fault::FaultKind::kStationCrash:
      crash_station(event.station);
      return;
    case fault::FaultKind::kStationRejoin:
      rejoin_station(event.station);
      return;
  }
}

void TtpSimulation::on_token_arrival(int station, std::uint64_t generation) {
  if (generation != token_generation_) return;  // token was destroyed
  auto& st = stations_[static_cast<std::size_t>(station)];
  const Seconds now = sim_.now();
  const int next = (station + 1) % cfg_.ttp.ring.num_stations;
  const Seconds wrap = next == 0 ? token_time_ : 0.0;

  // A crashed station is bypassed: the token repeats straight through (its
  // interface delay already left the hop latency via update_ring_timing).
  if (!st.alive) {
    pass_token(next, hop_ + wrap);
    return;
  }

  // Rotation metrics. Skipping them (collect_rotation_stats = false) is
  // what licenses the idle-lap fast-forward: a skipped lap can no longer
  // perturb the recorded gap distribution.
  if (cfg_.collect_rotation_stats && st.last_visit >= 0.0) {
    const Seconds gap = now - st.last_visit;
    max_intervisit_ = std::max(max_intervisit_, gap);
    if (station == 0) metrics_.token_rotation.add(gap);
  }
  st.last_visit = now;

  materialize_arrivals(station, st, now, /*enqueue=*/true);

  // Timer rules (see file comment). Expiry is evaluated lazily at token
  // arrival: an arrival past trt_expiry is exactly the "Late_Ct was set at
  // expiry and clears now" case of the standard.
  Seconds async_budget = 0.0;
  if (now < st.trt_expiry) {
    // Early token: earliness funds async; TRT restarts.
    async_budget = st.trt_expiry - now;
    st.trt_expiry = now + cfg_.ttrt;
  } else {
    // Late token: no async this visit; TRT restarted at the expiry instant
    // (so the next visit's earliness is measured against expiry + TTRT).
    st.trt_expiry += cfg_.ttrt;
    // Token so late that a second expiry also passed: in real FDDI the
    // claim process would recover the ring; model recovery as a restart.
    if (now >= st.trt_expiry) st.trt_expiry = now + cfg_.ttrt;
  }
  emit(cfg_.trace, now, TraceEventKind::kTokenArrival, station, async_budget);

  // Synchronous service: every hosted stream may use its own h_i.
  Seconds sync_used = 0.0;
  for (auto& local : st.streams) {
    sync_used += serve_stream(station, local, sync_used);
  }

  // Asynchronous service: frames start while earliness budget remains; the
  // last started frame overruns to completion.
  Seconds async_used = 0.0;
  if (cfg_.async_model != AsyncModel::kNone && async_budget > 0.0 &&
      f_async_ > 0.0) {
    const auto full_frames =
        static_cast<std::int64_t>(std::floor(async_budget / f_async_));
    std::int64_t frames = full_frames;
    if (async_budget - static_cast<double>(full_frames) * f_async_ > 0.0) {
      ++frames;  // overrun frame
    }
    if (cfg_.async_model == AsyncModel::kPoisson) {
      frames = std::min(frames, st.async_pending);
      st.async_pending -= frames;
    }
    async_used = static_cast<double>(frames) * f_async_;
    metrics_.async_frames_sent += static_cast<std::size_t>(frames);
    if (frames > 0) {
      emit(cfg_.trace, now, TraceEventKind::kAsyncFrame, station, async_used);
    }
  }

  // Pass the token downstream. Idle stations just repeat the token (their
  // latency is part of the hop), so a full rotation costs WT plus one token
  // transmission: charge token_time once per lap, at the wrap-around hop.
  // This matches the paper's Theta = WT + token-transmission accounting.
  pass_token(next, sync_used + async_used + hop_ + wrap);
}

SimMetrics TtpSimulation::run() {
  sim_.set_max_events(cfg_.max_events != 0 ? cfg_.max_events
                                           : kDefaultMaxSimEvents);
  // Phasing. Worst case: each message arrives just after the token's first
  // departure from its station (it always waits a full rotation).
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    auto& st = stations_[i];
    for (auto& local : st.streams) {
      if (cfg_.worst_case_phasing) {
        local.phase = static_cast<double>(i + 1) * (hop_ + token_time_) + 1e-9;
      } else {
        local.phase = rng_.uniform(0.0, local.spec.period);
      }
      local.next_release = local.phase;
    }
    if (cfg_.async_model == AsyncModel::kPoisson) {
      st.next_async_arrival =
          rng_.exponential(1.0 / cfg_.async_frames_per_second);
    }
  }
  // All rotation timers start fresh when the ring initializes.
  for (auto& st : stations_) st.trt_expiry = cfg_.ttrt;

  fault_events_ = cfg_.faults.sorted_events();
  for (std::size_t i = 0; i < fault_events_.size(); ++i) {
    Event ev;
    ev.kind = EventKind::kFault;
    ev.index = static_cast<std::int32_t>(i);
    sim_.schedule_at(fault_events_[i].time, ev);
  }

  // Initial token at station 0. Faults were scheduled first, so a fault at
  // t=0 fires before this and the generation guard makes recovery, not
  // this kickoff, issue the first token.
  Event kickoff;
  kickoff.kind = EventKind::kKickoff;
  kickoff.gen = token_generation_;
  sim_.schedule_at(0.0, kickoff);
  sim_.run_until(cfg_.horizon);

  // Account deadline misses of incomplete or never-served messages. A
  // station still down at the horizon generates nothing after its crash.
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    auto& st = stations_[i];
    materialize_arrivals(static_cast<int>(i), st, cfg_.horizon, st.alive);
    for (const auto& local : st.streams) {
      for (const auto& m : local.queue) {
        if (m.arrival + local.spec.deadline() <= cfg_.horizon) {
          metrics_.on_abandoned_miss(static_cast<int>(i), m.arrival,
                                     local.spec.deadline());
        }
      }
    }
  }
  record_run_observability(metrics_, sim_.events_executed());
  return metrics_;
}

}  // namespace tokenring::sim
