// Metrics collected by the protocol simulators.

#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "tokenring/common/stats.hpp"
#include "tokenring/common/units.hpp"

namespace tokenring::sim {

/// Per-station breakdown of a run (keyed by station index in
/// SimMetrics::per_station).
struct StationStats {
  std::size_t released = 0;
  std::size_t completed = 0;
  std::size_t misses = 0;
  RunningStats response_time;
};

/// Per-run aggregate results shared by the PDP and TTP simulators.
struct SimMetrics {
  /// Synchronous messages whose transmission completed.
  std::size_t messages_completed = 0;
  /// Completed messages that finished after their deadline, plus messages
  /// whose deadline passed while still incomplete at the end of the run.
  std::size_t deadline_misses = 0;
  /// Synchronous messages released during the run.
  std::size_t messages_released = 0;

  /// Response times (arrival -> last bit transmitted) of completed
  /// messages [s].
  RunningStats response_time;
  /// Response time / period of completed messages (1.0 = deadline-exact).
  RunningStats normalized_response;
  /// Token inter-arrival times at station 0 [s] (rotation time).
  RunningStats token_rotation;
  /// Asynchronous frames transmitted (TTP: earliness-funded; PDP:
  /// lowest-priority traffic).
  std::size_t async_frames_sent = 0;
  /// Token losses injected and recovered from (failure injection).
  std::size_t token_losses = 0;
  /// Per-station breakdown (only stations carrying a stream appear).
  std::map<int, StationStats> per_station;

  /// Record one released message at `station`.
  void on_release(int station);
  /// Record one completion; updates both aggregate and per-station stats.
  /// `deadline` is the effective relative deadline (miss check); `period`
  /// normalizes the response for reporting.
  void on_completion(int station, Seconds response, Seconds period,
                     Seconds deadline, Seconds slack);
  /// Record a miss of a message that never completed.
  void on_abandoned_miss(int station);

  /// Misses as a fraction of released messages (0 when none released).
  double miss_ratio() const {
    return messages_released == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(messages_released);
  }

  /// Multi-line human-readable summary.
  std::string summary() const;
};

}  // namespace tokenring::sim
