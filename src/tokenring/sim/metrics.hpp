// Metrics collected by the protocol simulators.

#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "tokenring/common/stats.hpp"
#include "tokenring/common/units.hpp"
#include "tokenring/fault/plan.hpp"

namespace tokenring::sim {

/// Per-station breakdown of a run (keyed by station index in
/// SimMetrics::per_station).
struct StationStats {
  std::size_t released = 0;
  std::size_t completed = 0;
  std::size_t misses = 0;
  RunningStats response_time;
};

/// Per-fault-kind accounting of a run.
struct FaultAccounting {
  /// Faults of this kind injected (including no-ops like corrupting an
  /// idle medium).
  std::size_t injected = 0;
  /// Total medium-dead time charged to this kind [s].
  Seconds outage = 0.0;
  /// Deadline misses whose service window overlapped one of this kind's
  /// outage windows (the most recent overlapping outage claims the miss).
  std::size_t attributed_misses = 0;
};

/// One interval during which the ring was recovering from a fault.
struct OutageWindow {
  Seconds begin = 0.0;
  Seconds end = 0.0;
  fault::FaultKind kind = fault::FaultKind::kTokenLoss;
};

/// Per-run aggregate results shared by the PDP and TTP simulators.
struct SimMetrics {
  /// Synchronous messages whose transmission completed.
  std::size_t messages_completed = 0;
  /// Completed messages that finished after their deadline, plus messages
  /// whose deadline passed while still incomplete at the end of the run.
  std::size_t deadline_misses = 0;
  /// Synchronous messages released during the run.
  std::size_t messages_released = 0;

  /// Response times (arrival -> last bit transmitted) of completed
  /// messages [s].
  RunningStats response_time;
  /// Response time / period of completed messages (1.0 = deadline-exact).
  RunningStats normalized_response;
  /// Token inter-arrival times at station 0 [s] (rotation time).
  RunningStats token_rotation;
  /// Asynchronous frames transmitted (TTP: earliness-funded; PDP:
  /// lowest-priority traffic).
  std::size_t async_frames_sent = 0;
  /// Token losses injected and recovered from (= per_fault token-loss
  /// count; kept as a top-level field because it is the headline fault).
  std::size_t token_losses = 0;
  /// Per-kind fault accounting (only injected kinds appear).
  std::map<fault::FaultKind, FaultAccounting> per_fault;
  /// Recovery intervals, in injection order.
  std::vector<OutageWindow> outages;
  /// Per-station breakdown (only stations carrying a stream appear).
  std::map<int, StationStats> per_station;
  /// Deepest backlog any single stream queue reached during the run.
  std::size_t max_queue_depth = 0;

  /// Record one released message at `station`.
  void on_release(int station);
  /// Record one completion; updates both aggregate and per-station stats.
  /// `arrival` is the message's absolute release time (used to attribute a
  /// late completion to an overlapping fault outage); `deadline` is the
  /// effective relative deadline (miss check); `period` normalizes the
  /// response for reporting.
  void on_completion(int station, Seconds arrival, Seconds response,
                     Seconds period, Seconds deadline, Seconds slack);
  /// Record a miss of a message that never completed (window
  /// [arrival, arrival + deadline] for fault attribution).
  void on_abandoned_miss(int station, Seconds arrival, Seconds deadline);
  /// Record one injected fault whose recovery keeps the ring down over
  /// [begin, end] (begin == end for faults with no outage, e.g. a
  /// corruption hitting an idle medium).
  void on_fault(fault::FaultKind kind, Seconds begin, Seconds end);
  /// Record one stream queue's depth after an enqueue (high watermark).
  void on_queue_depth(std::size_t depth) {
    if (depth > max_queue_depth) max_queue_depth = depth;
  }

  /// Total faults injected across all kinds.
  std::size_t faults_injected() const;
  /// Total medium-dead time across all kinds [s].
  Seconds total_outage() const;
  /// Misses attributed to some fault's recovery window.
  std::size_t fault_attributed_misses() const;

  /// Misses as a fraction of released messages (0 when none released).
  double miss_ratio() const {
    return messages_released == 0
               ? 0.0
               : static_cast<double>(deadline_misses) /
                     static_cast<double>(messages_released);
  }

  /// Multi-line human-readable summary.
  std::string summary() const;

 private:
  /// Attribute one miss with service window [begin, end] to the most
  /// recent overlapping outage, if any.
  void attribute_miss(Seconds begin, Seconds end);
};

/// Fold one finished run into the process-wide obs counters (sim.runs,
/// sim.events, message/rotation/fault tallies, the queue-depth gauge). Both
/// simulators call this exactly once at the end of run(), so instrumentation
/// costs one bump per trial, never per event.
void record_run_observability(const SimMetrics& metrics, std::size_t events);

}  // namespace tokenring::sim
