#include "tokenring/sim/event_queue.hpp"

#include <utility>

#include "tokenring/common/checks.hpp"

namespace tokenring::sim {

void EventQueue::push(Seconds at, EventFn fn) {
  TR_EXPECTS(at >= 0.0);
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

Seconds EventQueue::next_time() const {
  TR_EXPECTS(!heap_.empty());
  return heap_.top().at;
}

std::pair<Seconds, EventFn> EventQueue::pop() {
  TR_EXPECTS(!heap_.empty());
  // priority_queue::top() is const&; the closure must be moved out, so we
  // const_cast the known-unique top before popping (standard idiom).
  auto& top = const_cast<Entry&>(heap_.top());
  std::pair<Seconds, EventFn> out{top.at, std::move(top.fn)};
  heap_.pop();
  return out;
}

}  // namespace tokenring::sim
