#include "tokenring/sim/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "tokenring/common/checks.hpp"

namespace tokenring::sim {

namespace {
// Day indices past this are outside the exactly-representable integer range
// of a double; such events always live in the far heap.
constexpr double kMaxDay = 9.0e15;
constexpr double kMinWidth = 1e-12;
constexpr double kMaxWidth = 1e9;
// Rebuild hysteresis: a same-time event burst crowds one bucket no matter
// the width, so adaptation must not re-trigger on every pop.
constexpr std::uint64_t kMinPopsBetweenRebuilds = 64;
}  // namespace

EventQueue::EventQueue() : buckets_(kNumBuckets) {}

std::uint64_t EventQueue::day_of(double at) const {
  const double q = at / width_;
  if (q >= kMaxDay) return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(q);
}

bool EventQueue::is_near(std::uint64_t day) const {
  return day >= cur_day_ && day - cur_day_ < kNumBuckets;
}

void EventQueue::push(Seconds at, Event ev) {
  // SIM_CHECK: a NaN or negative key would silently corrupt the bucket and
  // heap order; reject it with a message naming the event kind.
  if (!(std::isfinite(at) && at >= 0.0)) {
    std::ostringstream os;
    os << "event time must be finite and >= 0, got " << at
       << " for event kind '" << to_string(ev.kind) << "'";
    detail::precondition_failed("std::isfinite(at) && at >= 0.0", __FILE__,
                                __LINE__, os.str());
  }
  ev.at = at;
  ev.seq = next_seq_++;
  std::uint32_t ref;
  if (free_.empty()) {
    ref = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(ev);
  } else {
    ref = free_.back();
    free_.pop_back();
    slab_[ref] = ev;
  }
  const Entry entry{at, ev.seq, ref};
  const std::uint64_t day = day_of(at);
  // Pushing earlier than everything popped so far (legal for a standalone
  // queue) slides the scan window back; forward filtering still finds any
  // entry that is now beyond the nominal window.
  if (day < cur_day_) cur_day_ = day;
  insert_entry(entry);
  ++size_;
  min_.valid = false;
}

void EventQueue::insert_entry(const Entry& entry) {
  const std::uint64_t day = day_of(entry.at);
  if (is_near(day)) {
    buckets_[day & kBucketMask].push_back(entry);
    ++near_count_;
  } else {
    far_.push(entry);
  }
}

const EventQueue::MinLoc& EventQueue::find_min() const {
  TR_EXPECTS(size_ != 0);
  if (min_.valid) return min_;

  MinLoc best;
  std::uint64_t best_seq = 0;
  std::size_t bucket_scan = 0;
  std::uint64_t empty_days = 0;
  const auto consider = [&](std::size_t b, std::size_t i) {
    const Entry& e = buckets_[b][i];
    if (!best.valid || e.at < best.at ||
        (e.at == best.at && e.seq < best_seq)) {
      best.valid = true;
      best.in_near = true;
      best.bucket = b;
      best.pos = i;
      best.at = e.at;
      best_seq = e.seq;
    }
  };

  if (near_count_ > 0) {
    for (std::uint64_t d = cur_day_;; ++d) {
      const std::size_t b = d & kBucketMask;
      const auto& bucket = buckets_[b];
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        // Entries of a later lap (or left beyond the window by a backwards
        // push) share the bucket; filter by day.
        if (day_of(bucket[i].at) == d) consider(b, i);
      }
      if (best.valid) {
        bucket_scan = bucket.size();
        break;
      }
      if (++empty_days > kMaxEmptyScan) {
        // Day walk is going nowhere (width far too narrow for the current
        // spacing): one linear sweep — the minimum over every near entry
        // needs no day filter.
        for (std::size_t b2 = 0; b2 < kNumBuckets; ++b2) {
          for (std::size_t i = 0; i < buckets_[b2].size(); ++i) consider(b2, i);
        }
        break;
      }
    }
  }
  // The far heap can hold an earlier event than the near ring (its
  // membership was decided at push time, against an older window).
  if (!far_.empty()) {
    const Entry& top = far_.top();
    if (!best.valid || top.at < best.at ||
        (top.at == best.at && top.seq < best_seq)) {
      best.valid = true;
      best.in_near = false;
      best.at = top.at;
    }
  }
  last_empty_scan_ = empty_days;
  last_bucket_scan_ = bucket_scan;
  min_ = best;
  return min_;
}

Seconds EventQueue::next_time() const { return find_min().at; }

Event EventQueue::pop() {
  const MinLoc loc = find_min();
  Entry entry;
  bool crowded_distinct = false;
  if (loc.in_near) {
    auto& bucket = buckets_[loc.bucket];
    entry = bucket[loc.pos];
    if (last_bucket_scan_ > kMaxBucketScan) {
      // Only narrow the width when the crowd is spread in time; a
      // same-instant burst maps to one bucket at any width.
      for (const auto& e : bucket) {
        if (e.at != entry.at) {
          crowded_distinct = true;
          break;
        }
      }
    }
    bucket[loc.pos] = bucket.back();
    bucket.pop_back();
    --near_count_;
  } else {
    entry = far_.top();
    far_.pop();
  }
  --size_;
  min_.valid = false;
  cur_day_ = day_of(entry.at);
  const Event out = slab_[entry.ref];
  free_.push_back(entry.ref);

  // Self-tuning: widen when pops walk long runs of empty days, narrow when
  // the winning bucket is crowded with time-spread entries; hysteresis
  // keeps pathological inputs from rebuilding per pop.
  ++pops_since_rebuild_;
  if (pops_since_rebuild_ > kMinPopsBetweenRebuilds) {
    if (last_empty_scan_ > kMaxEmptyScan / 2 && width_ < kMaxWidth) {
      rebuild(width_ * 16.0);
    } else if (crowded_distinct && width_ > kMinWidth) {
      rebuild(width_ / 16.0);
    }
  }
  last_empty_scan_ = 0;
  last_bucket_scan_ = 0;
  return out;
}

void EventQueue::rebuild(double new_width) {
  std::vector<Entry> pending;
  pending.reserve(near_count_);
  for (auto& bucket : buckets_) {
    pending.insert(pending.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  near_count_ = 0;
  width_ = std::min(std::max(new_width, kMinWidth), kMaxWidth);
  // Re-anchor the window at the earliest pending entry (far entries stay
  // in the heap; the pop-time comparison keeps them ordered regardless).
  std::uint64_t min_day = std::numeric_limits<std::uint64_t>::max();
  for (const auto& e : pending) min_day = std::min(min_day, day_of(e.at));
  if (min_day != std::numeric_limits<std::uint64_t>::max()) cur_day_ = min_day;
  for (const auto& e : pending) insert_entry(e);
  pops_since_rebuild_ = 0;
  min_.valid = false;
}

}  // namespace tokenring::sim
