// Time-ordered event queue for the discrete-event simulator.
//
// Events are closures keyed by (time, sequence): ties in time fire in
// insertion order, which keeps simulations deterministic for a fixed seed.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "tokenring/common/units.hpp"

namespace tokenring::sim {

/// An executable simulation event.
using EventFn = std::function<void()>;

/// Min-heap of (time, seq, fn) with FIFO tie-breaking.
class EventQueue {
 public:
  /// Enqueue `fn` to fire at absolute time `at` (>= 0).
  void push(Seconds at, EventFn fn);

  /// True iff no events remain.
  bool empty() const { return heap_.empty(); }
  /// Number of pending events.
  std::size_t size() const { return heap_.size(); }
  /// Firing time of the earliest event. Requires non-empty.
  Seconds next_time() const;

  /// Remove and return the earliest event. Requires non-empty.
  std::pair<Seconds, EventFn> pop();

 private:
  struct Entry {
    Seconds at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tokenring::sim
