// Time-ordered event queue for the discrete-event simulator.
//
// Calendar queue (bucketed scheduler) over pooled typed events. Events are
// keyed by (time, sequence): ties in time fire in insertion order, which
// keeps simulations deterministic for a fixed seed — the bucket layout is
// purely an access-path optimization and never changes the pop order.
//
// Layout:
//  * EventPool — a slab of Event values with a free list; push takes a slot,
//    pop returns it. Steady-state operation allocates nothing.
//  * Near ring — kNumBuckets "days" of width `width_` seconds. An event
//    whose day lies within kNumBuckets of the current day goes into
//    bucket[day % kNumBuckets]; pop scans forward from the current day and
//    picks the (at, seq)-minimum of the first non-empty day.
//  * Far heap — events beyond the near window (or beyond the day-index
//    range of a double) fall back to a plain binary min-heap; pop always
//    compares the near candidate against the heap top, so the global
//    (at, seq) order is exact regardless of which side an event sits on.
//
// The bucket width self-tunes: a pop that scans too many empty days doubles
// the width, a pop that scans an overcrowded bucket halves it; either way
// the near ring is rebuilt in place (rare, amortized O(1) per event).

#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "tokenring/sim/event.hpp"

namespace tokenring::sim {

/// Calendar queue of (time, seq, Event) with exact FIFO tie-breaking.
class EventQueue {
 public:
  EventQueue();

  /// Enqueue `ev` to fire at absolute time `at`. SIM_CHECK: `at` must be
  /// finite and >= 0, else a PreconditionError naming the event kind is
  /// thrown (a NaN or negative key would silently corrupt the bucket/heap
  /// order). Fills in ev.at and ev.seq.
  void push(Seconds at, Event ev);

  /// True iff no events remain.
  bool empty() const { return size_ == 0; }
  /// Number of pending events.
  std::size_t size() const { return size_; }
  /// Firing time of the earliest event. Requires non-empty.
  Seconds next_time() const;

  /// Remove and return the earliest event. Requires non-empty.
  Event pop();

 private:
  // Near-ring geometry. 4096 buckets keeps a full empty-lap probe cheap
  // while covering width_*4096 seconds of lookahead before the far heap
  // kicks in.
  static constexpr std::uint64_t kNumBuckets = 4096;
  static constexpr std::uint64_t kBucketMask = kNumBuckets - 1;
  // Self-tuning thresholds: > kMaxEmptyScan empty days probed in one pop
  // => width too narrow (double it); > kMaxBucketScan entries filtered in
  // the winning bucket => width too wide (halve it).
  static constexpr std::uint64_t kMaxEmptyScan = 512;
  static constexpr std::size_t kMaxBucketScan = 128;

  struct Entry {
    double at = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t ref = 0;  // pool slot
  };
  struct HeapLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  /// Slot in the near ring the minimum was found at (for pop-after-peek).
  struct MinLoc {
    bool valid = false;
    bool in_near = false;
    std::size_t bucket = 0;
    std::size_t pos = 0;
    double at = 0.0;
  };

  std::uint64_t day_of(double at) const;
  bool is_near(std::uint64_t day) const;
  void insert_entry(const Entry& entry);
  /// Locate the global (at, seq) minimum; caches the result until the next
  /// mutation. Requires non-empty.
  const MinLoc& find_min() const;
  /// Re-bucket every near entry under the current width_/cur_day_ (far
  /// entries stay in the heap; membership is re-decided per entry).
  void rebuild(double new_width);

  // Pooled event payloads.
  std::vector<Event> slab_;
  std::vector<std::uint32_t> free_;

  std::vector<std::vector<Entry>> buckets_;
  std::priority_queue<Entry, std::vector<Entry>, HeapLater> far_;
  double width_ = 1e-6;
  std::uint64_t cur_day_ = 0;   // scan never needs to look earlier
  std::size_t near_count_ = 0;
  std::size_t size_ = 0;
  std::uint64_t next_seq_ = 0;
  mutable MinLoc min_;          // cached find_min result
  // Scan statistics from the last find_min, feeding width adaptation.
  mutable std::uint64_t last_empty_scan_ = 0;
  mutable std::size_t last_bucket_scan_ = 0;
  std::uint64_t pops_since_rebuild_ = 0;
};

}  // namespace tokenring::sim
