#include "tokenring/sim/event.hpp"

namespace tokenring::sim {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kUser:
      return "user";
    case EventKind::kKickoff:
      return "kickoff";
    case EventKind::kFault:
      return "fault";
    case EventKind::kRecovery:
      return "recovery";
    case EventKind::kCorruptionRetry:
      return "corruption-retry";
    case EventKind::kTtpTokenHop:
      return "ttp-token-hop";
    case EventKind::kPdpArrival:
      return "pdp-arrival";
    case EventKind::kPdpAsyncArrival:
      return "pdp-async-arrival";
    case EventKind::kPdpIdleCapture:
      return "pdp-idle-capture";
    case EventKind::kPdpWalkDone:
      return "pdp-walk-done";
    case EventKind::kPdpSyncFrameDone:
      return "pdp-sync-frame-done";
    case EventKind::kPdpAsyncFrameDone:
      return "pdp-async-frame-done";
  }
  return "?";
}

}  // namespace tokenring::sim
