// Discrete-event simulation engine.
//
// A thin deterministic scheduler: protocol models schedule closures at
// absolute or relative times and the engine fires them in order. Time never
// goes backwards; scheduling in the past is a contract violation.

#pragma once

#include <cstddef>

#include "tokenring/sim/event_queue.hpp"

namespace tokenring::sim {

/// The simulation clock + event loop.
class Simulator {
 public:
  /// Current simulation time [s].
  Seconds now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  void schedule_in(Seconds delay, EventFn fn);

  /// Schedule `fn` at absolute time `at` (at >= now()).
  void schedule_at(Seconds at, EventFn fn);

  /// Run events until the queue empties or the next event is past
  /// `horizon`; events exactly at the horizon still fire. Returns the
  /// number of events executed.
  std::size_t run_until(Seconds horizon);

  /// Total events executed so far.
  std::size_t events_executed() const { return executed_; }

 private:
  EventQueue queue_;
  Seconds now_ = 0.0;
  std::size_t executed_ = 0;
};

}  // namespace tokenring::sim
