// Discrete-event simulation engine.
//
// A thin deterministic scheduler over two sources of work:
//  * the calendar queue of typed events (see event_queue.hpp), delivered to
//    the installed EventHandler in exact (time, seq) order; and
//  * an optional FrontierSource — a lazily advanced "next predictable
//    action" time (the TTP token walk). The engine interleaves the frontier
//    with the queue by time; at equal times queued events fire first, so a
//    fault scheduled at the same instant as a token arrival destroys the
//    token before the visit runs.
//
// Time never goes backwards; scheduling in the past is a contract
// violation.

#pragma once

#include <cstddef>
#include <stdexcept>

#include "tokenring/sim/event_queue.hpp"

namespace tokenring::sim {

/// Thrown by run_until when the max-event guard trips: some model bug (or
/// a pathological fault scenario) is scheduling an event storm and the run
/// would otherwise spin forever. The message carries the simulated time
/// and event count at abort for diagnosis.
class EventStormError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Receives queued events in (time, seq) order. now() equals the event's
/// firing time during on_event.
class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_event(const Event& ev) = 0;
};

/// A lazily advanced work source the engine merges with the event queue.
/// frontier_time() is the absolute time of the next predictable action
/// (+infinity when idle); advance_frontier() performs it. The engine sets
/// now() to frontier_time() before each advance. One advance counts as one
/// executed event for the storm guard.
class FrontierSource {
 public:
  virtual ~FrontierSource() = default;
  virtual Seconds frontier_time() const = 0;
  virtual void advance_frontier() = 0;
};

/// The simulation clock + event loop.
class Simulator {
 public:
  /// Current simulation time [s].
  Seconds now() const { return now_; }

  /// Schedule `ev` to fire `delay` seconds from now (delay >= 0).
  void schedule_in(Seconds delay, Event ev);

  /// Schedule `ev` at absolute time `at` (at >= now()).
  void schedule_at(Seconds at, Event ev);

  /// Install the handler queued events are delivered to. Must be set
  /// before run_until executes any event.
  void set_handler(EventHandler* handler) { handler_ = handler; }

  /// Install (or clear, with nullptr) the frontier work source.
  void set_frontier(FrontierSource* frontier) { frontier_ = frontier; }

  /// Abort (with EventStormError) any run_until that executes more than
  /// `cap` events in total; 0 (the default) disables the guard.
  void set_max_events(std::size_t cap) { max_events_ = cap; }

  /// Run events (queued and frontier) until both sources are past
  /// `horizon`; work exactly at the horizon still fires. Returns the
  /// number of events executed. Throws EventStormError if the max-event
  /// guard is set and trips.
  std::size_t run_until(Seconds horizon);

  /// Total events executed so far.
  std::size_t events_executed() const { return executed_; }

 private:
  EventQueue queue_;
  EventHandler* handler_ = nullptr;
  FrontierSource* frontier_ = nullptr;
  Seconds now_ = 0.0;
  std::size_t executed_ = 0;
  std::size_t max_events_ = 0;
};

}  // namespace tokenring::sim
