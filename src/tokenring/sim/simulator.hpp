// Discrete-event simulation engine.
//
// A thin deterministic scheduler: protocol models schedule closures at
// absolute or relative times and the engine fires them in order. Time never
// goes backwards; scheduling in the past is a contract violation.

#pragma once

#include <cstddef>
#include <stdexcept>

#include "tokenring/sim/event_queue.hpp"

namespace tokenring::sim {

/// Thrown by run_until when the max-event guard trips: some model bug (or
/// a pathological fault scenario) is scheduling an event storm and the run
/// would otherwise spin forever. The message carries the simulated time
/// and event count at abort for diagnosis.
class EventStormError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The simulation clock + event loop.
class Simulator {
 public:
  /// Current simulation time [s].
  Seconds now() const { return now_; }

  /// Schedule `fn` to run `delay` seconds from now (delay >= 0).
  void schedule_in(Seconds delay, EventFn fn);

  /// Schedule `fn` at absolute time `at` (at >= now()).
  void schedule_at(Seconds at, EventFn fn);

  /// Abort (with EventStormError) any run_until that executes more than
  /// `cap` events in total; 0 (the default) disables the guard.
  void set_max_events(std::size_t cap) { max_events_ = cap; }

  /// Run events until the queue empties or the next event is past
  /// `horizon`; events exactly at the horizon still fire. Returns the
  /// number of events executed. Throws EventStormError if the max-event
  /// guard is set and trips.
  std::size_t run_until(Seconds horizon);

  /// Total events executed so far.
  std::size_t events_executed() const { return executed_; }

 private:
  EventQueue queue_;
  Seconds now_ = 0.0;
  std::size_t executed_ = 0;
  std::size_t max_events_ = 0;
};

}  // namespace tokenring::sim
