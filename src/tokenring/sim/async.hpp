// Asynchronous traffic models for the protocol simulators.
//
// The schedulability analyses assume the worst case: every station always
// has asynchronous frames ready (kSaturating). The simulators additionally
// support no async traffic (kNone) and a Poisson arrival process
// (kPoisson) for studying average behaviour under lighter cross-traffic.

#pragma once

#include "tokenring/common/units.hpp"

namespace tokenring::sim {

/// How asynchronous traffic is generated at each station.
enum class AsyncModel {
  /// No asynchronous traffic at all.
  kNone,
  /// Every station always has asynchronous frames queued (the analyses'
  /// worst-case assumption).
  kSaturating,
  /// Asynchronous frames arrive at each station as a Poisson process with
  /// the configured per-station rate.
  kPoisson,
};

/// Display name ("none", "saturating", "poisson").
inline const char* to_string(AsyncModel model) {
  switch (model) {
    case AsyncModel::kNone:
      return "none";
    case AsyncModel::kSaturating:
      return "saturating";
    case AsyncModel::kPoisson:
      return "poisson";
  }
  return "?";
}

}  // namespace tokenring::sim
