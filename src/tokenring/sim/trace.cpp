#include "tokenring/sim/trace.hpp"

#include <cstdio>

namespace tokenring::sim {

const char* to_string(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kMessageArrival:
      return "arrival";
    case TraceEventKind::kSyncFrameStart:
      return "sync-frame";
    case TraceEventKind::kMessageComplete:
      return "complete";
    case TraceEventKind::kDeadlineMiss:
      return "DEADLINE-MISS";
    case TraceEventKind::kAsyncFrame:
      return "async-frame";
    case TraceEventKind::kTokenArrival:
      return "token";
  }
  return "?";
}

std::string format_trace_record(const TraceRecord& record) {
  char buf[128];
  if (record.kind == TraceEventKind::kMessageArrival) {
    // detail = payload bits for arrivals, a duration for everything else.
    std::snprintf(buf, sizeof buf, "[%10.4f ms] station %3d  %-13s %10.0f bits",
                  to_milliseconds(record.at), record.station,
                  to_string(record.kind), record.detail);
  } else {
    std::snprintf(buf, sizeof buf, "[%10.4f ms] station %3d  %-13s %10.4f ms",
                  to_milliseconds(record.at), record.station,
                  to_string(record.kind), to_milliseconds(record.detail));
  }
  return buf;
}

}  // namespace tokenring::sim
