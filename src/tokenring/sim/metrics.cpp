#include "tokenring/sim/metrics.hpp"

#include <sstream>

namespace tokenring::sim {

void SimMetrics::on_release(int station) {
  ++messages_released;
  ++per_station[station].released;
}

void SimMetrics::on_completion(int station, Seconds response, Seconds period,
                               Seconds deadline, Seconds slack) {
  ++messages_completed;
  response_time.add(response);
  normalized_response.add(response / period);
  auto& st = per_station[station];
  ++st.completed;
  st.response_time.add(response);
  if (response > deadline + slack) {
    ++deadline_misses;
    ++st.misses;
  }
}

void SimMetrics::on_abandoned_miss(int station) {
  ++deadline_misses;
  ++per_station[station].misses;
}

std::string SimMetrics::summary() const {
  std::ostringstream os;
  os << "released=" << messages_released
     << " completed=" << messages_completed << " misses=" << deadline_misses
     << " (ratio " << miss_ratio() << ")\n";
  if (response_time.count() > 0) {
    os << "response time [ms]: mean=" << to_milliseconds(response_time.mean())
       << " max=" << to_milliseconds(response_time.max())
       << "; normalized (r/P): mean=" << normalized_response.mean()
       << " max=" << normalized_response.max() << "\n";
  }
  if (token_rotation.count() > 0) {
    os << "token rotation @station0 [ms]: mean="
       << to_milliseconds(token_rotation.mean())
       << " max=" << to_milliseconds(token_rotation.max()) << "\n";
  }
  os << "async frames sent=" << async_frames_sent;
  if (token_losses > 0) os << "; token losses recovered=" << token_losses;
  os << "\n";
  return os.str();
}

}  // namespace tokenring::sim
