#include "tokenring/sim/metrics.hpp"

#include <sstream>

#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::sim {

void record_run_observability(const SimMetrics& metrics, std::size_t events) {
  static const obs::Counter runs("sim.runs");
  static const obs::Counter sim_events("sim.events");
  static const obs::Counter released("sim.messages_released");
  static const obs::Counter completed("sim.messages_completed");
  static const obs::Counter misses("sim.deadline_misses");
  static const obs::Counter rotations("sim.token_rotations");
  static const obs::Counter async_frames("sim.async_frames_sent");
  static const obs::Counter recoveries("sim.recovery_invocations");
  static const obs::Gauge queue_depth("sim.max_queue_depth");
  runs.add();
  sim_events.add(events);
  released.add(metrics.messages_released);
  completed.add(metrics.messages_completed);
  misses.add(metrics.deadline_misses);
  rotations.add(metrics.token_rotation.count());
  async_frames.add(metrics.async_frames_sent);
  recoveries.add(metrics.faults_injected());
  queue_depth.record(metrics.max_queue_depth);
}

void SimMetrics::on_release(int station) {
  ++messages_released;
  ++per_station[station].released;
}

void SimMetrics::on_completion(int station, Seconds arrival, Seconds response,
                               Seconds period, Seconds deadline,
                               Seconds slack) {
  ++messages_completed;
  response_time.add(response);
  normalized_response.add(response / period);
  auto& st = per_station[station];
  ++st.completed;
  st.response_time.add(response);
  if (response > deadline + slack) {
    ++deadline_misses;
    ++st.misses;
    attribute_miss(arrival, arrival + response);
  }
}

void SimMetrics::on_abandoned_miss(int station, Seconds arrival,
                                   Seconds deadline) {
  ++deadline_misses;
  ++per_station[station].misses;
  attribute_miss(arrival, arrival + deadline);
}

void SimMetrics::on_fault(fault::FaultKind kind, Seconds begin, Seconds end) {
  TR_EXPECTS(end >= begin);
  auto& acct = per_fault[kind];
  ++acct.injected;
  acct.outage += end - begin;
  if (kind == fault::FaultKind::kTokenLoss) ++token_losses;
  if (end > begin) outages.push_back({begin, end, kind});
}

void SimMetrics::attribute_miss(Seconds begin, Seconds end) {
  // Most recent overlapping outage claims the miss: it is the proximate
  // cause of the lateness. Outages are few per run, so a reverse scan is
  // cheap.
  for (auto it = outages.rbegin(); it != outages.rend(); ++it) {
    if (it->begin < end && it->end > begin) {
      ++per_fault[it->kind].attributed_misses;
      return;
    }
  }
}

std::size_t SimMetrics::faults_injected() const {
  std::size_t total = 0;
  for (const auto& [kind, acct] : per_fault) total += acct.injected;
  return total;
}

Seconds SimMetrics::total_outage() const {
  Seconds total = 0.0;
  for (const auto& [kind, acct] : per_fault) total += acct.outage;
  return total;
}

std::size_t SimMetrics::fault_attributed_misses() const {
  std::size_t total = 0;
  for (const auto& [kind, acct] : per_fault) total += acct.attributed_misses;
  return total;
}

std::string SimMetrics::summary() const {
  std::ostringstream os;
  os << "released=" << messages_released
     << " completed=" << messages_completed << " misses=" << deadline_misses
     << " (ratio " << miss_ratio() << ")\n";
  if (response_time.count() > 0) {
    os << "response time [ms]: mean=" << to_milliseconds(response_time.mean())
       << " max=" << to_milliseconds(response_time.max())
       << "; normalized (r/P): mean=" << normalized_response.mean()
       << " max=" << normalized_response.max() << "\n";
  }
  if (token_rotation.count() > 0) {
    os << "token rotation @station0 [ms]: mean="
       << to_milliseconds(token_rotation.mean())
       << " max=" << to_milliseconds(token_rotation.max()) << "\n";
  }
  os << "async frames sent=" << async_frames_sent << "\n";
  for (const auto& [kind, acct] : per_fault) {
    os << "fault " << fault::to_string(kind) << ": injected=" << acct.injected
       << " outage_ms=" << to_milliseconds(acct.outage)
       << " attributed_misses=" << acct.attributed_misses << "\n";
  }
  return os.str();
}

}  // namespace tokenring::sim
