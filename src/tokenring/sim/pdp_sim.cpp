#include "tokenring/sim/pdp_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tokenring/common/checks.hpp"
#include "tokenring/fault/recovery.hpp"

namespace tokenring::sim {

namespace {
// Completion within this slack of the deadline still counts as met; guards
// against accumulated floating-point noise in long runs.
constexpr Seconds kDeadlineSlack = 1e-12;
}  // namespace

PdpSimulation::PdpSimulation(msg::MessageSet set, SimConfig config)
    : set_(std::move(set)), cfg_(std::move(config)), rng_(cfg_.seed) {
  cfg_.pdp.validate();
  set_.validate();
  TR_EXPECTS(cfg_.bandwidth > 0.0);
  TR_EXPECTS(cfg_.horizon > 0.0);
  if (cfg_.async_model == AsyncModel::kPoisson) {
    TR_EXPECTS_MSG(cfg_.async_frames_per_second > 0.0,
                   "Poisson async model needs a positive rate");
  }
  TR_EXPECTS(cfg_.arrival_jitter >= 0.0);

  const int n = cfg_.pdp.ring.num_stations;
  cfg_.faults.validate(n);
  stations_.resize(static_cast<std::size_t>(n));
  active_count_ = n;

  // Deadline-monotonic priorities across all streams (= rate-monotonic
  // under the paper's implicit deadlines): tighter deadline = higher
  // priority (smaller rank); ties broken by set order, matching the
  // analysis' stable-sort convention.
  std::vector<std::size_t> order(set_.size());
  for (std::size_t i = 0; i < set_.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return set_[a].deadline() < set_[b].deadline();
                   });
  std::vector<int> rank(set_.size());
  for (std::size_t r = 0; r < order.size(); ++r) {
    rank[order[r]] = static_cast<int>(r);
  }

  for (std::size_t i = 0; i < set_.size(); ++i) {
    const auto& s = set_[i];
    TR_EXPECTS_MSG(s.station >= 0 && s.station < n,
                   "stream station out of ring range");
    LocalStream local;
    local.spec = s;
    local.priority = rank[i];
    stations_[static_cast<std::size_t>(s.station)].streams.push_back(local);
  }

  token_time_ = cfg_.pdp.ring.token_time(cfg_.bandwidth);
  update_ring_timing();
  sim_.set_handler(this);
}

void PdpSimulation::update_ring_timing() {
  // Bypassed (crashed) stations contribute no ring/buffer bit delay; the
  // cable and the hop positions remain, so the walk shortens only by the
  // dead stations' latencies.
  const auto& ring = cfg_.pdp.ring;
  const Seconds walk =
      ring.propagation_delay() + static_cast<double>(active_count_) *
                                     ring.per_station_bit_delay /
                                     cfg_.bandwidth;
  theta_ = walk + token_time_;
  hop_ = walk / static_cast<double>(ring.num_stations);
}

int PdpSimulation::first_alive() const {
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (stations_[i].alive) return static_cast<int>(i);
  }
  return -1;
}

Seconds PdpSimulation::hops_time(int from, int to) const {
  const int n = cfg_.pdp.ring.num_stations;
  const int hops = ((to - from - 1) % n + n) % n + 1;  // 1..n (self = n)
  return static_cast<double>(hops) * hop_ + token_time_;
}

void PdpSimulation::on_event(const Event& ev) {
  switch (ev.kind) {
    case EventKind::kPdpArrival:
      on_arrival(ev.station, static_cast<std::size_t>(ev.index));
      return;
    case EventKind::kPdpAsyncArrival: {
      auto& st = stations_[static_cast<std::size_t>(ev.station)];
      if (st.alive) ++st.async_pending;
      schedule_async_arrival(ev.station);
      if (st.alive) maybe_capture_idle(ev.station);
      return;
    }
    case EventKind::kPdpIdleCapture: {
      if (ev.gen != token_generation_) return;  // token destroyed mid-walk
      capture_pending_ = false;
      // Arbitrate among everything pending now (the walk collected bids).
      bool is_async = false;
      const auto winner = pick_winner(ev.station, is_async);
      if (winner) {
        start_frame(*winner, is_async);
      } else {
        medium_busy_ = false;
        idle_position_ = ev.station;
        idle_since_ = sim_.now();
      }
      return;
    }
    case EventKind::kRecovery: {
      if (ev.gen != token_generation_) return;  // superseded by newer fault
      const int resume = first_alive();
      if (resume < 0) return;  // every station crashed: the ring stays dark
      release_medium(resume);
      return;
    }
    case EventKind::kCorruptionRetry:
      if (ev.gen != token_generation_) return;
      release_medium(medium_station_);
      return;
    case EventKind::kPdpWalkDone:
      if (ev.gen != token_generation_) return;
      start_frame(ev.station, ev.index != 0);
      return;
    case EventKind::kPdpAsyncFrameDone: {
      if (ev.gen != token_generation_) return;  // frame destroyed in flight
      ++metrics_.async_frames_sent;
      if (cfg_.async_model == AsyncModel::kPoisson) {
        --stations_[static_cast<std::size_t>(ev.station)].async_pending;
      }
      emit(cfg_.trace, sim_.now(), TraceEventKind::kAsyncFrame, ev.station,
           ev.value);
      release_medium(ev.station);
      return;
    }
    case EventKind::kPdpSyncFrameDone: {
      if (ev.gen != token_generation_) return;  // frame destroyed in flight
      const int station = ev.station;
      const auto serve_idx = static_cast<std::size_t>(ev.index);
      const Bits chunk = ev.value;
      auto& stn = stations_[static_cast<std::size_t>(station)];
      auto& local = stn.streams[serve_idx];
      auto& msg = local.queue.front();
      msg.remaining -= chunk;
      if (msg.remaining <= 1e-9) {
        const Seconds response = sim_.now() - msg.arrival;
        const Seconds deadline = local.spec.deadline();
        metrics_.on_completion(station, msg.arrival, response,
                               local.spec.period, deadline, kDeadlineSlack);
        emit(cfg_.trace, sim_.now(), TraceEventKind::kMessageComplete, station,
             response);
        if (response > deadline + kDeadlineSlack) {
          emit(cfg_.trace, sim_.now(), TraceEventKind::kDeadlineMiss, station,
               response);
        }
        local.queue.pop_front();
      }

      if (cfg_.pdp.variant == analysis::PdpVariant::kModified8025 &&
          best_local_priority(stn) >= 0) {
        // Keep the medium while still the highest-priority active station.
        bool is_async2 = false;
        const auto winner = pick_winner(station, is_async2);
        if (winner && *winner == station && !is_async2) {
          start_frame(station, false);
          return;
        }
      }
      release_medium(station);
      return;
    }
    case EventKind::kFault:
      on_fault(fault_events_[static_cast<std::size_t>(ev.index)]);
      return;
    case EventKind::kKickoff:
      if (ev.gen != token_generation_) return;  // a fault at t=0 beat us
      if (cfg_.async_model == AsyncModel::kSaturating) {
        start_frame(ev.station, /*is_async=*/true);
      } else {
        release_medium(ev.station);
      }
      return;
    case EventKind::kUser:
    case EventKind::kTtpTokenHop:
      TR_EXPECTS_MSG(false, "event kind not handled by the PDP simulator");
      return;
  }
}

void PdpSimulation::schedule_arrival(int station, std::size_t stream_idx,
                                     Seconds at) {
  if (at > cfg_.horizon) return;
  Event ev;
  ev.kind = EventKind::kPdpArrival;
  ev.station = station;
  ev.index = static_cast<std::int32_t>(stream_idx);
  sim_.schedule_at(at, ev);
}

void PdpSimulation::schedule_async_arrival(int station) {
  const Seconds at =
      sim_.now() + rng_.exponential(1.0 / cfg_.async_frames_per_second);
  if (at > cfg_.horizon) return;
  Event ev;
  ev.kind = EventKind::kPdpAsyncArrival;
  ev.station = station;
  sim_.schedule_at(at, ev);
}

void PdpSimulation::on_arrival(int station, std::size_t stream_idx) {
  auto& st = stations_[static_cast<std::size_t>(station)];
  auto& local = st.streams[stream_idx];
  // A crashed station's host generates nothing; the release cadence keeps
  // ticking (and keeps consuming jitter draws) so the stream resumes on
  // its own phase after a rejoin.
  if (st.alive) {
    local.queue.push_back(
        PendingMessage{sim_.now(), local.spec.payload_bits});
    metrics_.on_release(station);
    metrics_.on_queue_depth(local.queue.size());
    emit(cfg_.trace, sim_.now(), TraceEventKind::kMessageArrival, station,
         local.spec.payload_bits);
  }
  Seconds gap = local.spec.period;
  if (cfg_.arrival_jitter > 0.0) {
    gap += rng_.uniform(0.0, cfg_.arrival_jitter) * local.spec.period;
  }
  schedule_arrival(station, stream_idx, sim_.now() + gap);
  if (st.alive) maybe_capture_idle(station);
}

void PdpSimulation::maybe_capture_idle(int station) {
  // If the medium is idle, the free token is circulating at one hop per
  // hop-latency (idle stations just repeat it): capture it when it next
  // passes here, paying one token transmission for the capture/release.
  // This is the frontier idiom avant la lettre: no events circulate on an
  // idle ring, the token position is pure arithmetic.
  if (medium_busy_ || capture_pending_) return;
  const int n = cfg_.pdp.ring.num_stations;
  const Seconds lap = static_cast<double>(n) * hop_;
  const Seconds elapsed = sim_.now() - idle_since_;
  const auto hops_done = static_cast<std::int64_t>(std::floor(elapsed / hop_));
  const int pos = static_cast<int>(
      (static_cast<std::int64_t>(idle_position_) + hops_done) %
      static_cast<std::int64_t>(n));
  const Seconds pos_time = idle_since_ + static_cast<double>(hops_done) * hop_;
  const int dist = ((station - pos) % n + n) % n;
  Seconds capture = pos_time + static_cast<double>(dist) * hop_ + token_time_;
  if (capture < sim_.now()) capture += lap;  // just missed this pass
  medium_busy_ = true;
  capture_pending_ = true;
  Event ev;
  ev.kind = EventKind::kPdpIdleCapture;
  ev.station = station;
  ev.gen = token_generation_;
  sim_.schedule_at(capture, ev);
}

void PdpSimulation::ring_outage(fault::FaultKind kind, Seconds outage) {
  ++token_generation_;
  medium_busy_ = true;  // the ring is dead until recovery completes
  capture_pending_ = false;
  const Seconds now = sim_.now();
  recovering_until_ = std::max(recovering_until_, now + outage);
  metrics_.on_fault(kind, now, now + outage);
  Event ev;
  ev.kind = EventKind::kRecovery;
  ev.gen = token_generation_;
  sim_.schedule_in(outage, ev);
}

void PdpSimulation::crash_station(int station) {
  auto& st = stations_[static_cast<std::size_t>(station)];
  if (!st.alive) {  // already down: nothing further to break
    metrics_.on_fault(fault::FaultKind::kStationCrash, sim_.now(), sim_.now());
    return;
  }
  st.alive = false;
  st.async_pending = 0;
  --active_count_;
  update_ring_timing();
  // The break is detected by the downstream neighbour's beacon; the fault
  // domain is bypassed and the monitor purges. Record the outage before
  // abandoning the station's queue so those misses attribute to the crash.
  ring_outage(fault::FaultKind::kStationCrash,
              fault::pdp_beacon_outage(cfg_.pdp, cfg_.bandwidth));
  for (auto& local : st.streams) {
    for (const auto& m : local.queue) {
      if (m.arrival + local.spec.deadline() <= cfg_.horizon) {
        metrics_.on_abandoned_miss(station, m.arrival, local.spec.deadline());
      }
    }
    local.queue.clear();
  }
}

void PdpSimulation::rejoin_station(int station) {
  auto& st = stations_[static_cast<std::size_t>(station)];
  if (st.alive) {  // never crashed (or already back): nothing to insert
    metrics_.on_fault(fault::FaultKind::kStationRejoin, sim_.now(),
                      sim_.now());
    return;
  }
  st.alive = true;
  ++active_count_;
  update_ring_timing();
  // Ring insertion disrupts the ring like a break: beacon + purge again.
  ring_outage(fault::FaultKind::kStationRejoin,
              fault::pdp_beacon_outage(cfg_.pdp, cfg_.bandwidth));
}

void PdpSimulation::on_fault(const fault::FaultEvent& event) {
  const Seconds now = sim_.now();
  switch (event.kind) {
    case fault::FaultKind::kTokenLoss:
      ring_outage(event.kind,
                  fault::pdp_monitor_outage(cfg_.pdp, cfg_.bandwidth));
      return;
    case fault::FaultKind::kNoiseBurst:
      // The noise destroys whatever was in flight and jams the medium for
      // its duration; the monitor can only start recovering once it clears.
      ring_outage(event.kind,
                  event.duration +
                      fault::pdp_monitor_outage(cfg_.pdp, cfg_.bandwidth));
      return;
    case fault::FaultKind::kDuplicateToken:
      ring_outage(event.kind,
                  fault::pdp_duplicate_outage(cfg_.pdp, cfg_.bandwidth));
      return;
    case fault::FaultKind::kFrameCorruption: {
      if (now < recovering_until_ || !medium_busy_) {
        // Nothing valid in flight to corrupt (idle medium, or the ring is
        // already down recovering): the fault is absorbed.
        metrics_.on_fault(event.kind, now, now);
        return;
      }
      // The frame in flight fails its FCS; its slot is wasted, the sender
      // retransmits (the chunk stays queued because the generation bump
      // aborts the in-flight completion event).
      ++token_generation_;
      capture_pending_ = false;
      medium_busy_ = true;
      const Seconds outage =
          fault::pdp_corruption_outage(cfg_.pdp, cfg_.bandwidth);
      recovering_until_ = std::max(recovering_until_, now + outage);
      metrics_.on_fault(event.kind, now, now + outage);
      Event ev;
      ev.kind = EventKind::kCorruptionRetry;
      ev.gen = token_generation_;
      sim_.schedule_in(outage, ev);
      return;
    }
    case fault::FaultKind::kStationCrash:
      crash_station(event.station);
      return;
    case fault::FaultKind::kStationRejoin:
      rejoin_station(event.station);
      return;
  }
}

int PdpSimulation::best_local_priority(const Station& st) const {
  int best = std::numeric_limits<int>::max();
  for (const auto& local : st.streams) {
    if (!local.queue.empty()) best = std::min(best, local.priority);
  }
  return best == std::numeric_limits<int>::max() ? -1 : best;
}

std::optional<int> PdpSimulation::pick_winner(int after, bool& is_async) const {
  // Highest-priority pending synchronous frame wins; the tie-break is
  // already encoded in the global priority ranks.
  std::optional<int> best;
  int best_priority = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    if (!stations_[i].alive) continue;
    const int p = best_local_priority(stations_[i]);
    if (p >= 0 && p < best_priority) {
      best_priority = p;
      best = static_cast<int>(i);
    }
  }
  if (best) {
    is_async = false;
    return best;
  }
  const int n = cfg_.pdp.ring.num_stations;
  switch (cfg_.async_model) {
    case AsyncModel::kNone:
      return std::nullopt;
    case AsyncModel::kSaturating:
      // Every alive station always has async frames: first alive station
      // downstream.
      for (int d = 1; d <= n; ++d) {
        const int candidate = (after + d) % n;
        if (stations_[static_cast<std::size_t>(candidate)].alive) {
          is_async = true;
          return candidate;
        }
      }
      return std::nullopt;
    case AsyncModel::kPoisson:
      // First downstream alive station with a queued async frame.
      for (int d = 1; d <= n; ++d) {
        const int candidate = (after + d) % n;
        const auto& st = stations_[static_cast<std::size_t>(candidate)];
        if (st.alive && st.async_pending > 0) {
          is_async = true;
          return candidate;
        }
      }
      return std::nullopt;
  }
  return std::nullopt;
}

void PdpSimulation::release_medium(int station) {
  bool is_async = false;
  const auto winner = pick_winner(station, is_async);
  if (!winner) {
    medium_busy_ = false;
    idle_position_ = station;
    idle_since_ = sim_.now();
    return;
  }
  medium_busy_ = true;
  Event ev;
  ev.kind = EventKind::kPdpWalkDone;
  ev.station = *winner;
  ev.index = is_async ? 1 : 0;
  ev.gen = token_generation_;
  sim_.schedule_in(hops_time(station, *winner), ev);
}

void PdpSimulation::start_frame(int station, bool is_async) {
  medium_busy_ = true;
  medium_station_ = station;
  const auto& frame = cfg_.pdp.frame;

  if (is_async) {
    const Seconds effective =
        std::max(frame.frame_time(cfg_.bandwidth), theta_);
    Event ev;
    ev.kind = EventKind::kPdpAsyncFrameDone;
    ev.station = station;
    ev.gen = token_generation_;
    ev.value = effective;
    sim_.schedule_in(effective, ev);
    return;
  }

  // Serve the station's highest-priority pending stream.
  auto& st = stations_[static_cast<std::size_t>(station)];
  std::size_t serve_idx = st.streams.size();
  int best_priority = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < st.streams.size(); ++i) {
    if (!st.streams[i].queue.empty() &&
        st.streams[i].priority < best_priority) {
      best_priority = st.streams[i].priority;
      serve_idx = i;
    }
  }
  TR_EXPECTS_MSG(serve_idx < st.streams.size(),
                 "start_frame on a station with nothing pending");

  auto& head = st.streams[serve_idx].queue.front();
  const Bits chunk = std::min(head.remaining, frame.info_bits);
  const Seconds frame_time =
      transmission_time(chunk + frame.overhead_bits, cfg_.bandwidth);
  const Seconds effective = std::max(frame_time, theta_);
  emit(cfg_.trace, sim_.now(), TraceEventKind::kSyncFrameStart, station,
       effective);

  Event ev;
  ev.kind = EventKind::kPdpSyncFrameDone;
  ev.station = station;
  ev.index = static_cast<std::int32_t>(serve_idx);
  ev.gen = token_generation_;
  ev.value = chunk;
  sim_.schedule_in(effective, ev);
}

SimMetrics PdpSimulation::run() {
  sim_.set_max_events(cfg_.max_events != 0 ? cfg_.max_events
                                           : kDefaultMaxSimEvents);
  // Phasing: worst case releases everything at the critical instant t=0;
  // otherwise phases are uniform in [0, P_i).
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    auto& st = stations_[i];
    for (std::size_t k = 0; k < st.streams.size(); ++k) {
      auto& local = st.streams[k];
      local.phase = cfg_.worst_case_phasing
                        ? 0.0
                        : rng_.uniform(0.0, local.spec.period);
      schedule_arrival(static_cast<int>(i), k, local.phase);
    }
  }
  if (cfg_.async_model == AsyncModel::kPoisson) {
    for (std::size_t i = 0; i < stations_.size(); ++i) {
      schedule_async_arrival(static_cast<int>(i));
    }
  }

  fault_events_ = cfg_.faults.sorted_events();
  for (std::size_t i = 0; i < fault_events_.size(); ++i) {
    Event ev;
    ev.kind = EventKind::kFault;
    ev.index = static_cast<std::int32_t>(i);
    sim_.schedule_at(fault_events_[i].time, ev);
  }

  // Kick off the medium. With saturating async an async frame starts
  // immediately at the last station — under worst-case phasing this is the
  // priority-inversion blocking of Lemma 4.1 (sync frames queued at t=0
  // must wait for a lower-priority frame already committed).
  const int kickoff = cfg_.pdp.ring.num_stations - 1;
  medium_busy_ = true;
  Event ev;
  ev.kind = EventKind::kKickoff;
  ev.station = kickoff;
  ev.gen = token_generation_;
  sim_.schedule_at(0.0, ev);

  sim_.run_until(cfg_.horizon);

  // Messages whose deadline passed while still incomplete count as misses.
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    for (const auto& local : stations_[i].streams) {
      for (const auto& m : local.queue) {
        if (m.arrival + local.spec.deadline() <= cfg_.horizon) {
          metrics_.on_abandoned_miss(static_cast<int>(i), m.arrival,
                                     local.spec.deadline());
        }
      }
    }
  }
  record_run_observability(metrics_, sim_.events_executed());
  return metrics_;
}

}  // namespace tokenring::sim
