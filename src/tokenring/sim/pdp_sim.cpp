#include "tokenring/sim/pdp_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tokenring/common/checks.hpp"

namespace tokenring::sim {

namespace {
// Completion within this slack of the deadline still counts as met; guards
// against accumulated floating-point noise in long runs.
constexpr Seconds kDeadlineSlack = 1e-12;
}  // namespace

PdpSimulation::PdpSimulation(msg::MessageSet set, PdpSimConfig config)
    : set_(std::move(set)), cfg_(std::move(config)), rng_(cfg_.seed) {
  cfg_.params.validate();
  set_.validate();
  TR_EXPECTS(cfg_.bandwidth > 0.0);
  TR_EXPECTS(cfg_.horizon > 0.0);
  if (cfg_.async_model == AsyncModel::kPoisson) {
    TR_EXPECTS_MSG(cfg_.async_frames_per_second > 0.0,
                   "Poisson async model needs a positive rate");
  }
  TR_EXPECTS(cfg_.arrival_jitter >= 0.0);

  const int n = cfg_.params.ring.num_stations;
  stations_.resize(static_cast<std::size_t>(n));

  // Deadline-monotonic priorities across all streams (= rate-monotonic
  // under the paper's implicit deadlines): tighter deadline = higher
  // priority (smaller rank); ties broken by set order, matching the
  // analysis' stable-sort convention.
  std::vector<std::size_t> order(set_.size());
  for (std::size_t i = 0; i < set_.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     return set_[a].deadline() < set_[b].deadline();
                   });
  std::vector<int> rank(set_.size());
  for (std::size_t r = 0; r < order.size(); ++r) {
    rank[order[r]] = static_cast<int>(r);
  }

  for (std::size_t i = 0; i < set_.size(); ++i) {
    const auto& s = set_[i];
    TR_EXPECTS_MSG(s.station >= 0 && s.station < n,
                   "stream station out of ring range");
    LocalStream local;
    local.spec = s;
    local.priority = rank[i];
    stations_[static_cast<std::size_t>(s.station)].streams.push_back(local);
  }

  theta_ = cfg_.params.ring.theta(cfg_.bandwidth);
  hop_ = cfg_.params.ring.hop_latency(cfg_.bandwidth);
  token_time_ = cfg_.params.ring.token_time(cfg_.bandwidth);
}

void PdpSimulation::emit(TraceEventKind kind, int station,
                         double detail) const {
  if (cfg_.trace) cfg_.trace(TraceRecord{sim_.now(), kind, station, detail});
}

Seconds PdpSimulation::hops_time(int from, int to) const {
  const int n = cfg_.params.ring.num_stations;
  const int hops = ((to - from - 1) % n + n) % n + 1;  // 1..n (self = n)
  return static_cast<double>(hops) * hop_ + token_time_;
}

void PdpSimulation::schedule_arrival(int station, std::size_t stream_idx,
                                     Seconds at) {
  if (at > cfg_.horizon) return;
  sim_.schedule_at(at,
                   [this, station, stream_idx] { on_arrival(station, stream_idx); });
}

void PdpSimulation::schedule_async_arrival(int station) {
  const Seconds at =
      sim_.now() + rng_.exponential(1.0 / cfg_.async_frames_per_second);
  if (at > cfg_.horizon) return;
  sim_.schedule_at(at, [this, station] {
    ++stations_[static_cast<std::size_t>(station)].async_pending;
    schedule_async_arrival(station);
    maybe_capture_idle(station);
  });
}

void PdpSimulation::on_arrival(int station, std::size_t stream_idx) {
  auto& local =
      stations_[static_cast<std::size_t>(station)].streams[stream_idx];
  local.queue.push_back(PendingMessage{sim_.now(), local.spec.payload_bits});
  metrics_.on_release(station);
  emit(TraceEventKind::kMessageArrival, station, local.spec.payload_bits);
  Seconds gap = local.spec.period;
  if (cfg_.arrival_jitter > 0.0) {
    gap += rng_.uniform(0.0, cfg_.arrival_jitter) * local.spec.period;
  }
  schedule_arrival(station, stream_idx, sim_.now() + gap);
  maybe_capture_idle(station);
}

void PdpSimulation::maybe_capture_idle(int station) {
  // If the medium is idle, the free token is circulating at one hop per
  // hop-latency (idle stations just repeat it): capture it when it next
  // passes here, paying one token transmission for the capture/release.
  if (medium_busy_ || capture_pending_) return;
  const int n = cfg_.params.ring.num_stations;
  const Seconds lap = static_cast<double>(n) * hop_;
  const Seconds elapsed = sim_.now() - idle_since_;
  const auto hops_done = static_cast<std::int64_t>(std::floor(elapsed / hop_));
  const int pos = static_cast<int>(
      (static_cast<std::int64_t>(idle_position_) + hops_done) %
      static_cast<std::int64_t>(n));
  const Seconds pos_time = idle_since_ + static_cast<double>(hops_done) * hop_;
  const int dist = ((station - pos) % n + n) % n;
  Seconds capture = pos_time + static_cast<double>(dist) * hop_ + token_time_;
  if (capture < sim_.now()) capture += lap;  // just missed this pass
  medium_busy_ = true;
  capture_pending_ = true;
  sim_.schedule_at(capture, [this, station, gen = token_generation_] {
    if (gen != token_generation_) return;  // token destroyed mid-walk
    capture_pending_ = false;
    // Arbitrate among everything pending now (the walk collected bids).
    bool is_async = false;
    const auto winner = pick_winner(station, is_async);
    if (winner) {
      start_frame(*winner, is_async);
    } else {
      medium_busy_ = false;
      idle_position_ = station;
      idle_since_ = sim_.now();
    }
  });
}

void PdpSimulation::on_token_loss() {
  ++token_generation_;
  ++metrics_.token_losses;
  medium_busy_ = true;  // the ring is dead until the monitor recovers it
  capture_pending_ = false;
  // Active-monitor recovery: the monitor notices the absence of valid
  // transmissions within one frame slot, purges the ring (one full walk),
  // and issues a fresh token.
  const Seconds timeout =
      std::max(cfg_.params.frame.frame_time(cfg_.bandwidth), theta_) + theta_;
  sim_.schedule_in(timeout, [this, gen = token_generation_] {
    if (gen != token_generation_) return;  // superseded by a newer loss
    release_medium(0);
  });
}

int PdpSimulation::best_local_priority(const Station& st) const {
  int best = std::numeric_limits<int>::max();
  for (const auto& local : st.streams) {
    if (!local.queue.empty()) best = std::min(best, local.priority);
  }
  return best == std::numeric_limits<int>::max() ? -1 : best;
}

std::optional<int> PdpSimulation::pick_winner(int after, bool& is_async) const {
  // Highest-priority pending synchronous frame wins; the tie-break is
  // already encoded in the global priority ranks.
  std::optional<int> best;
  int best_priority = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    const int p = best_local_priority(stations_[i]);
    if (p >= 0 && p < best_priority) {
      best_priority = p;
      best = static_cast<int>(i);
    }
  }
  if (best) {
    is_async = false;
    return best;
  }
  const int n = cfg_.params.ring.num_stations;
  switch (cfg_.async_model) {
    case AsyncModel::kNone:
      return std::nullopt;
    case AsyncModel::kSaturating:
      // Every station always has async frames: next station downstream.
      is_async = true;
      return (after + 1) % n;
    case AsyncModel::kPoisson:
      // First downstream station with a queued async frame.
      for (int d = 1; d <= n; ++d) {
        const int candidate = (after + d) % n;
        if (stations_[static_cast<std::size_t>(candidate)].async_pending > 0) {
          is_async = true;
          return candidate;
        }
      }
      return std::nullopt;
  }
  return std::nullopt;
}

void PdpSimulation::release_medium(int station) {
  bool is_async = false;
  const auto winner = pick_winner(station, is_async);
  if (!winner) {
    medium_busy_ = false;
    idle_position_ = station;
    idle_since_ = sim_.now();
    return;
  }
  medium_busy_ = true;
  sim_.schedule_in(hops_time(station, *winner),
                   [this, w = *winner, is_async, gen = token_generation_] {
                     if (gen != token_generation_) return;
                     start_frame(w, is_async);
                   });
}

void PdpSimulation::start_frame(int station, bool is_async) {
  medium_busy_ = true;
  const auto& frame = cfg_.params.frame;

  if (is_async) {
    const Seconds effective =
        std::max(frame.frame_time(cfg_.bandwidth), theta_);
    sim_.schedule_in(effective, [this, station, effective,
                                 gen = token_generation_] {
      if (gen != token_generation_) return;  // frame destroyed in flight
      ++metrics_.async_frames_sent;
      if (cfg_.async_model == AsyncModel::kPoisson) {
        --stations_[static_cast<std::size_t>(station)].async_pending;
      }
      emit(TraceEventKind::kAsyncFrame, station, effective);
      release_medium(station);
    });
    return;
  }

  // Serve the station's highest-priority pending stream.
  auto& st = stations_[static_cast<std::size_t>(station)];
  std::size_t serve_idx = st.streams.size();
  int best_priority = std::numeric_limits<int>::max();
  for (std::size_t i = 0; i < st.streams.size(); ++i) {
    if (!st.streams[i].queue.empty() &&
        st.streams[i].priority < best_priority) {
      best_priority = st.streams[i].priority;
      serve_idx = i;
    }
  }
  TR_EXPECTS_MSG(serve_idx < st.streams.size(),
                 "start_frame on a station with nothing pending");

  auto& head = st.streams[serve_idx].queue.front();
  const Bits chunk = std::min(head.remaining, frame.info_bits);
  const Seconds frame_time =
      transmission_time(chunk + frame.overhead_bits, cfg_.bandwidth);
  const Seconds effective = std::max(frame_time, theta_);
  emit(TraceEventKind::kSyncFrameStart, station, effective);

  sim_.schedule_in(effective, [this, station, serve_idx, chunk,
                               gen = token_generation_] {
    if (gen != token_generation_) return;  // frame destroyed in flight
    auto& stn = stations_[static_cast<std::size_t>(station)];
    auto& local = stn.streams[serve_idx];
    auto& msg = local.queue.front();
    msg.remaining -= chunk;
    if (msg.remaining <= 1e-9) {
      const Seconds response = sim_.now() - msg.arrival;
      const Seconds deadline = local.spec.deadline();
      metrics_.on_completion(station, response, local.spec.period, deadline,
                             kDeadlineSlack);
      emit(TraceEventKind::kMessageComplete, station, response);
      if (response > deadline + kDeadlineSlack) {
        emit(TraceEventKind::kDeadlineMiss, station, response);
      }
      local.queue.pop_front();
    }

    if (cfg_.params.variant == analysis::PdpVariant::kModified8025 &&
        best_local_priority(stn) >= 0) {
      // Keep the medium while still the highest-priority active station.
      bool is_async2 = false;
      const auto winner = pick_winner(station, is_async2);
      if (winner && *winner == station && !is_async2) {
        start_frame(station, false);
        return;
      }
    }
    release_medium(station);
  });
}

SimMetrics PdpSimulation::run() {
  // Phasing: worst case releases everything at the critical instant t=0;
  // otherwise phases are uniform in [0, P_i).
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    auto& st = stations_[i];
    for (std::size_t k = 0; k < st.streams.size(); ++k) {
      auto& local = st.streams[k];
      local.phase = cfg_.worst_case_phasing
                        ? 0.0
                        : rng_.uniform(0.0, local.spec.period);
      schedule_arrival(static_cast<int>(i), k, local.phase);
    }
  }
  if (cfg_.async_model == AsyncModel::kPoisson) {
    for (std::size_t i = 0; i < stations_.size(); ++i) {
      schedule_async_arrival(static_cast<int>(i));
    }
  }

  for (Seconds loss : cfg_.token_loss_times) {
    TR_EXPECTS_MSG(loss >= 0.0, "token loss times must be non-negative");
    sim_.schedule_at(loss, [this] { on_token_loss(); });
  }

  // Kick off the medium. With saturating async an async frame starts
  // immediately at the last station — under worst-case phasing this is the
  // priority-inversion blocking of Lemma 4.1 (sync frames queued at t=0
  // must wait for a lower-priority frame already committed).
  const int kickoff = cfg_.params.ring.num_stations - 1;
  medium_busy_ = true;
  sim_.schedule_at(0.0, [this, kickoff] {
    if (cfg_.async_model == AsyncModel::kSaturating) {
      start_frame(kickoff, /*is_async=*/true);
    } else {
      release_medium(kickoff);
    }
  });

  sim_.run_until(cfg_.horizon);

  // Messages whose deadline passed while still incomplete count as misses.
  for (std::size_t i = 0; i < stations_.size(); ++i) {
    for (const auto& local : stations_[i].streams) {
      for (const auto& m : local.queue) {
        if (m.arrival + local.spec.deadline() <= cfg_.horizon) {
          metrics_.on_abandoned_miss(static_cast<int>(i));
        }
      }
    }
  }
  return metrics_;
}

SimMetrics run_pdp_simulation(const msg::MessageSet& set,
                              const PdpSimConfig& config) {
  PdpSimulation sim(set, config);
  return sim.run();
}

}  // namespace tokenring::sim
