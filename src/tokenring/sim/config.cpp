#include "tokenring/sim/config.hpp"

#include <utility>

#include "tokenring/analysis/ttrt.hpp"
#include "tokenring/sim/pdp_sim.hpp"
#include "tokenring/sim/ttp_sim.hpp"

namespace tokenring::sim {

std::unique_ptr<Simulation> make_simulator(msg::MessageSet set,
                                           const SimConfig& config) {
  if (config.protocol == Protocol::kPdp) {
    return std::make_unique<PdpSimulation>(std::move(set), config);
  }
  SimConfig cfg = config;
  // Fill the TTP parameters the paper derives from the message set when
  // the caller leaves them unset.
  if (cfg.ttrt <= 0.0) {
    cfg.ttrt = analysis::select_ttrt(set, cfg.ttp.ring, cfg.bandwidth);
  }
  if (cfg.sync_bandwidth_per_stream.empty() && !set.empty()) {
    cfg.sync_bandwidth_per_stream.reserve(set.size());
    for (const auto& s : set.streams()) {
      cfg.sync_bandwidth_per_stream.push_back(
          analysis::ttp_local_bandwidth(s, cfg.ttp, cfg.bandwidth, cfg.ttrt)
              .value_or(0.0));
    }
  }
  return std::make_unique<TtpSimulation>(std::move(set), std::move(cfg));
}

SimMetrics run_simulation(const msg::MessageSet& set, const SimConfig& config) {
  return make_simulator(set, config)->run();
}

}  // namespace tokenring::sim
