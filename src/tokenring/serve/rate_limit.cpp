#include "tokenring/serve/rate_limit.hpp"

#include <algorithm>
#include <cmath>

#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::serve {

TokenBucket::TokenBucket(double rate_per_s, double burst, std::uint64_t now_ns)
    : rate_per_ns_(rate_per_s * 1e-9),
      burst_(burst),
      tokens_(burst),
      last_ns_(now_ns) {
  TR_EXPECTS_MSG(rate_per_s > 0.0 && std::isfinite(rate_per_s),
                 "token bucket rate must be positive and finite");
  TR_EXPECTS_MSG(burst > 0.0 && std::isfinite(burst),
                 "token bucket burst must be positive and finite");
}

bool TokenBucket::consume(std::uint64_t now_ns, double tokens) {
  if (now_ns > last_ns_) {
    tokens_ = std::min(
        burst_, tokens_ + static_cast<double>(now_ns - last_ns_) * rate_per_ns_);
    last_ns_ = now_ns;
  }
  if (tokens_ >= tokens) {
    tokens_ -= tokens;
    return true;
  }
  return false;
}

std::uint64_t TokenBucket::nanos_until(double tokens) const {
  if (tokens_ >= tokens) return 0;
  const double deficit = tokens - tokens_;
  return static_cast<std::uint64_t>(std::ceil(deficit / rate_per_ns_));
}

RateLimiter::RateLimiter(const Options& options) : options_(options) {
  if (options_.burst <= 0.0) options_.burst = options_.rate_per_s;
  TR_EXPECTS_MSG(options_.max_clients > 0, "max_clients must be >= 1");
}

double RateLimiter::burst() const { return options_.burst; }

RateLimiter::Verdict RateLimiter::check(const std::string& client,
                                        std::uint64_t now_ns) {
  if (!enabled()) return {};
  static const obs::Counter rejected("serve.ratelimit.rejected");
  static const obs::Counter resets("serve.ratelimit.resets");

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = buckets_.find(client);
  if (it == buckets_.end()) {
    if (buckets_.size() >= options_.max_clients) {
      buckets_.clear();
      resets.add();
    }
    it = buckets_
             .emplace(client, TokenBucket(options_.rate_per_s, options_.burst,
                                          now_ns))
             .first;
  }
  if (it->second.consume(now_ns)) return {};
  rejected.add();
  return {false, it->second.nanos_until(1.0)};
}

}  // namespace tokenring::serve
