// Per-connection request loop of the admission-control server.
//
// One copy of the framing/overload logic, shared by the production server
// (SocketIo transport, Engine handler) and the in-process fault-injection
// tests and fuzz targets (FaultyIo transport, any line handler):
//
//   read (idle timeout) -> frame lines -> handler -> write (write timeout)
//
// Overload rules enforced here, at the edge:
//  * Idle/read timeout: a peer that stops sending mid-request (slow
//    loris) is cut off after `idle_timeout_ms` of silence.
//  * Write timeout: a peer that stops reading cannot park the thread in
//    send(); the connection is dropped after `write_timeout_ms`.
//  * Oversized lines get one 413 response and then the connection is
//    CLOSED, always: a line that overflowed mid-read has no trustworthy
//    resynchronization point, and closing on complete-but-oversized lines
//    too keeps the behaviour independent of how TCP happened to chunk the
//    bytes.

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

#include "tokenring/serve/transport.hpp"

namespace tokenring::serve {

/// Produces the response line (no trailing newline) for one request line.
using LineHandler =
    std::function<std::string(std::string_view line, const std::string& peer)>;

struct ConnectionLimits {
  /// Request lines longer than this are answered with a 413 and the
  /// connection is closed.
  std::size_t max_line = 1 << 20;
  /// Longest silence tolerated while waiting for request bytes
  /// [milliseconds]; <= 0 waits forever.
  int idle_timeout_ms = -1;
  /// Budget for writing one response to a non-reading peer; <= 0 waits
  /// forever.
  int write_timeout_ms = -1;
};

/// Why run_connection returned (the connection is always finished —
/// either the peer ended it or we shut it down).
enum class ConnectionEnd {
  kPeerClosed,    // orderly EOF from the peer
  kIdleTimeout,   // no bytes within idle_timeout_ms
  kOversized,     // 413 answered, connection closed
  kReadError,     // connection reset or unrecoverable read failure
  kWriteError,    // peer gone while writing a response
  kWriteTimeout,  // peer stopped reading
};

const char* to_string(ConnectionEnd end);

/// Bump the serve.conn.* counter for a finished connection. Shared by the
/// blocking loop below and the reactor's ConnFsm so both front ends feed
/// the same metrics.
void note_connection_end(ConnectionEnd end);

/// Serve one connection to completion. Never throws; every exit path
/// shuts the transport down (idempotent) and bumps a serve.conn.*
/// counter.
ConnectionEnd run_connection(Transport& transport, const LineHandler& handler,
                             const ConnectionLimits& limits,
                             const std::string& peer);

}  // namespace tokenring::serve
