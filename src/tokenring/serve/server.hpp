// Line-delimited-JSON TCP front end for the request Engine.
//
// Two front ends share one accept loop and one Engine:
//
//   * kReactor (default): a sharded, edge-triggered epoll reactor. N
//     reactor threads (default exec::default_jobs()) each own an epoll
//     instance and a shard of nonblocking connections; the accept loop
//     hands new fds out round-robin through eventfd-signalled inboxes.
//     Per-connection framing/overload state machines (ConnFsm) carry the
//     same rules as the blocking loop, with idle/write deadlines on a
//     per-reactor timer wheel; compute flows through the Engine's
//     batcher and completes back onto the owning reactor's wakeup queue,
//     so a reactor thread never blocks on a future. Cost per connection
//     is a table entry + epoll registration, so thousands of mostly-idle
//     peers are cheap (DESIGN.md §4j).
//   * kThreaded: the original thread-per-connection loop (SocketIo +
//     Transport + run_connection). Kept as the semantic reference the
//     reactor is golden-tested against, and as the baseline the
//     BM_ServeManyConns benchmark pair quantifies the reactor's win over.
//
// The accept loop polls the listen socket alongside a self-pipe;
// request_stop() is a single write() to that pipe, making it safe to call
// from a signal handler. Shutdown is graceful by construction in both
// modes:
//
//   request_stop() -> accept loop exits -> every connection gets
//   shutdown(SHUT_RD) -> buffered lines are answered and flushed ->
//   Engine::drain() waits out the batcher.
//
// Bind to port 0 to get an ephemeral port (tests, CI); port() reports the
// bound port after start().

#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "tokenring/serve/engine.hpp"
#include "tokenring/serve/reactor.hpp"

namespace tokenring::serve {

class Server {
 public:
  enum class FrontEnd {
    kReactor,   // sharded epoll event loops (production default)
    kThreaded,  // one blocking thread per connection (reference baseline)
  };

  struct Options {
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; read it back with port().
    int port = 0;
    /// Listen backlog: bursts of connect()s beyond this are queued by the
    /// kernel or refused. 1024 rides out chaos-harness accept floods.
    int backlog = 1024;
    /// Longest silence tolerated while waiting for request bytes before
    /// the connection is dropped (slow-loris guard); <= 0 waits forever.
    int idle_timeout_ms = 30000;
    /// Budget for writing one response to a peer that stopped reading;
    /// <= 0 waits forever.
    int write_timeout_ms = 10000;
    FrontEnd front_end = FrontEnd::kReactor;
    /// Reactor shards (kReactor only); 0 picks exec::default_jobs().
    std::size_t reactors = 0;
    Engine::Options engine;
  };

  explicit Server(const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start accepting. False (with `error` set) when the
  /// socket setup fails; the Server is then inert.
  bool start(std::string& error);

  /// Bound port (valid after start()).
  int port() const { return port_; }

  /// Begin shutdown. Async-signal-safe: one write() on the self-pipe.
  void request_stop();

  /// Block until the accept loop and every connection have finished and
  /// the engine has drained. Call after request_stop(), or to park the
  /// calling thread until a signal handler stops the server.
  void wait();

  Engine& engine() { return *engine_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void accept_loop();
  /// One accept() + dispatch to a reactor shard or connection thread.
  /// False when the queue is empty (EAGAIN) -- only possible once the
  /// stop path has made the listen socket nonblocking.
  bool accept_and_dispatch();
  void serve_connection(int fd, const std::string& peer);

  Options options_;
  std::unique_ptr<Engine> engine_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::size_t next_reactor_ = 0;  // round-robin cursor (accept thread only)
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int port_ = 0;
  bool started_ = false;
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<Connection> connections_;
};

}  // namespace tokenring::serve
