// Line-delimited-JSON TCP front end for the request Engine.
//
// Plain POSIX sockets, thread-per-connection: admission queries are small
// and the compute is what costs, so connection threads only frame lines
// and block on the Engine (which batches across connections). Each
// connection runs the shared run_connection() loop over a SocketIo
// transport, which is where the idle/write timeouts, EINTR retries, and
// 413-then-close policy live (see connection.hpp). The accept loop polls
// the listen socket alongside a self-pipe; request_stop() is a single
// write() to that pipe, making it safe to call from a signal handler.
// Shutdown is graceful by construction:
//
//   request_stop() -> accept loop exits -> every connection gets
//   shutdown(SHUT_RD) -> readers drain their buffered lines, write the
//   responses, and exit -> Engine::drain() waits out the batcher.
//
// Bind to port 0 to get an ephemeral port (tests, CI); port() reports the
// bound port after start().

#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "tokenring/serve/engine.hpp"

namespace tokenring::serve {

class Server {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// 0 binds an ephemeral port; read it back with port().
    int port = 0;
    int backlog = 128;
    /// Longest silence tolerated while waiting for request bytes before
    /// the connection is dropped (slow-loris guard); <= 0 waits forever.
    int idle_timeout_ms = 30000;
    /// Budget for writing one response to a peer that stopped reading;
    /// <= 0 waits forever.
    int write_timeout_ms = 10000;
    Engine::Options engine;
  };

  explicit Server(const Options& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, and start accepting. False (with `error` set) when the
  /// socket setup fails; the Server is then inert.
  bool start(std::string& error);

  /// Bound port (valid after start()).
  int port() const { return port_; }

  /// Begin shutdown. Async-signal-safe: one write() on the self-pipe.
  void request_stop();

  /// Block until the accept loop and every connection thread have exited
  /// and the engine has drained. Call after request_stop(), or to park
  /// the calling thread until a signal handler stops the server.
  void wait();

  Engine& engine() { return *engine_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void accept_loop();
  void serve_connection(int fd, const std::string& peer);

  Options options_;
  std::unique_ptr<Engine> engine_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int port_ = 0;
  bool started_ = false;
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<Connection> connections_;
};

}  // namespace tokenring::serve
