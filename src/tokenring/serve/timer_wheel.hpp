// Hashed timing wheel for per-reactor connection deadlines.
//
// The threaded front end enforced idle/write timeouts by passing a budget
// into every poll() call — one syscall-bounded wait per connection. A
// reactor multiplexes thousands of connections on one epoll_wait, so the
// deadlines move into a wheel: arming, re-arming, and cancelling a timer
// are O(1) map/vector operations, and one sweep per tick fires whatever
// came due, independent of how many idle connections are parked.
//
// Entries carry their absolute deadline, so the wheel is lap-safe: a
// deadline several laps out sits in its slot and is simply skipped (and
// kept) by earlier sweeps that visit the slot. Cancellation is tombstone
// based — cancel() drops the id from the live set and the entry is
// discarded whenever its slot is next swept — so re-arming a connection's
// idle timer on every received byte never compacts a vector.
//
// Single-threaded by design: each reactor owns one wheel and touches it
// only from its event loop.

#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace tokenring::serve {

class TimerWheel {
 public:
  using Id = std::uint64_t;

  struct Expired {
    Id id = 0;
    std::uint64_t payload = 0;
  };

  /// `tick_ns` is the firing granularity (deadlines are exact in the
  /// entry, approximate only in *when* the sweep notices them);
  /// `slots` spreads entries so one sweep touches ~armed/slots entries.
  explicit TimerWheel(std::uint64_t tick_ns = 10'000'000,
                      std::size_t slots = 512);

  /// Arm a timer for absolute `deadline_ns`; `payload` is returned
  /// verbatim on expiry (the reactor packs a connection handle into it).
  Id arm(std::uint64_t deadline_ns, std::uint64_t payload);

  /// Forget a timer. Safe on already-fired or unknown ids.
  void cancel(Id id);

  /// Sweep every slot between the last sweep and `now_ns`, appending
  /// entries whose deadline has passed to `fired` (cancelled entries are
  /// discarded silently, future-lap entries stay armed).
  void expire(std::uint64_t now_ns, std::vector<Expired>& fired);

  /// Timers currently armed (cancel() tombstones count as disarmed).
  std::size_t armed() const { return live_.size(); }

  /// Suggested wait bound for the owning event loop: one tick while
  /// anything is armed, "forever" (-1 for epoll) otherwise.
  int poll_timeout_ms() const;

  std::uint64_t tick_ns() const { return tick_ns_; }

 private:
  struct Entry {
    Id id;
    std::uint64_t deadline_ns;
    std::uint64_t payload;
  };

  std::uint64_t tick_ns_;
  std::vector<std::vector<Entry>> slots_;
  /// Live timer ids -> deadline; the wheel entries are weak references.
  std::unordered_map<Id, std::uint64_t> live_;
  Id next_id_ = 1;
  std::uint64_t last_sweep_ns_ = 0;
};

}  // namespace tokenring::serve
