#include "tokenring/serve/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "tokenring/common/clock.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::serve {

namespace {

// Timer payloads pack the connection fd and which deadline fired.
constexpr std::uint64_t kIdleKind = 0;
constexpr std::uint64_t kWriteKind = 1;

std::uint64_t timer_payload(int fd, std::uint64_t kind) {
  return (static_cast<std::uint64_t>(fd) << 1) | kind;
}

std::uint64_t ms_to_ns(int ms) {
  return static_cast<std::uint64_t>(ms) * 1'000'000ULL;
}

}  // namespace

Reactor::Reactor(Engine& engine, const Options& options)
    : engine_(engine), options_(options) {
  limits_.max_line = options_.max_line;
  limits_.idle_timeout_ms = options_.idle_timeout_ms;
  limits_.write_timeout_ms = options_.write_timeout_ms;
}

Reactor::~Reactor() {
  if (thread_.joinable()) {
    begin_drain();
    thread_.join();
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (event_fd_ >= 0) ::close(event_fd_);
}

bool Reactor::start(std::string& error) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    error = std::string("epoll_create1: ") + std::strerror(errno);
    return false;
  }
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    error = std::string("eventfd: ") + std::strerror(errno);
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: drained fully on every wakeup
  ev.data.fd = event_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    error = std::string("epoll_ctl(eventfd): ") + std::strerror(errno);
    ::close(epoll_fd_);
    ::close(event_fd_);
    epoll_fd_ = event_fd_ = -1;
    return false;
  }
  thread_ = std::thread([this] { loop(); });
  return true;
}

void Reactor::ring() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(event_fd_, &one, sizeof(one));
}

void Reactor::add_connection(int fd, std::string peer) {
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    inbox_conns_.push_back({fd, std::move(peer)});
  }
  ring();
}

void Reactor::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    drain_requested_ = true;
  }
  ring();
}

void Reactor::join() {
  if (thread_.joinable()) thread_.join();
}

Reactor::Conn* Reactor::find(int fd) {
  const auto it = conns_.find(fd);
  return it == conns_.end() ? nullptr : it->second.get();
}

void Reactor::loop() {
  static const obs::Counter wakeups("serve.reactor.wakeups");
  loop_thread_id_ = std::this_thread::get_id();

  epoll_event events[256];
  std::vector<int> touched;
  std::vector<TimerWheel::Expired> fired;
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)),
                               wheel_.poll_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone: nothing sane left to do
    }
    wakeups.add();
    now_ns_ = steady_now_ns();
    touched.clear();
    bool rang = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == event_fd_) {
        std::uint64_t drainer = 0;
        while (::read(event_fd_, &drainer, sizeof(drainer)) > 0) {
        }
        rang = true;
        continue;
      }
      Conn* conn = find(fd);
      if (conn == nullptr) continue;  // torn down earlier this round
      if ((events[i].events &
           (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) != 0) {
        pump_read(*conn);
      }
      if ((events[i].events & EPOLLOUT) != 0 && !conn->fsm.finished()) {
        conn->fsm.on_writable();
      }
      touched.push_back(fd);
    }

    if (rang) process_inbox(now_ns_, touched);

    for (const int fd : touched) finalize(fd, now_ns_);

    fired.clear();
    wheel_.expire(now_ns_, fired);
    for (const TimerWheel::Expired& t : fired) handle_timer(t, now_ns_);

    if (draining_ && conns_.empty()) return;
  }
}

void Reactor::process_inbox(std::uint64_t now_ns, std::vector<int>& touched) {
  std::vector<PendingConn> new_conns;
  std::vector<PendingCompletion> completions;
  bool drain = false;
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    new_conns.swap(inbox_conns_);
    completions.swap(inbox_completions_);
    drain = drain_requested_;
  }
  for (PendingConn& pending : new_conns) {
    adopt(std::move(pending), now_ns, touched);
  }
  for (PendingCompletion& completion : completions) {
    static const obs::Counter posted("serve.reactor.completions");
    posted.add();
    deliver(completion.fd, completion.gen, completion.slot,
            std::move(completion.response), now_ns);
    touched.push_back(completion.fd);
  }
  if (drain && !draining_) enter_drain(now_ns, touched);
}

void Reactor::adopt(PendingConn&& pending, std::uint64_t now_ns,
                    std::vector<int>& touched) {
  static const obs::Counter opened("serve.conn.opened");
  static const obs::Gauge peak("serve.reactor.peak_conns");
  if (draining_) {
    // The accept loop stops before drain begins, but close defensively:
    // a connection adopted now could never be served to completion.
    ::shutdown(pending.fd, SHUT_RDWR);
    ::close(pending.fd);
    return;
  }
  const int fd = pending.fd;
  auto conn = std::make_unique<Conn>(fd, next_gen_++, limits_,
                                     std::move(pending.peer));
  conn->last_activity_ns = now_ns;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  if (options_.idle_timeout_ms > 0) {
    conn->idle_timer = wheel_.arm(now_ns + ms_to_ns(options_.idle_timeout_ms),
                                  timer_payload(fd, kIdleKind));
    conn->idle_armed = true;
  }
  opened.add();
  conns_.emplace(fd, std::move(conn));
  peak.record(conns_.size());
  // Bytes may have raced ahead of the registration; with edge triggering
  // the kernel reports readiness present at ADD time, but pumping once
  // here costs one EAGAIN and removes any reliance on that subtlety.
  pump_read(*find(fd));
  touched.push_back(fd);
}

void Reactor::enter_drain(std::uint64_t now_ns, std::vector<int>& touched) {
  draining_ = true;
  // Half-close every connection: the kernel hands the FSM whatever the
  // client already sent, then EOF; buffered requests are answered, then
  // the connection finishes (same contract as the threaded wait()).
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) fds.push_back(fd);
  for (const int fd : fds) {
    Conn* conn = find(fd);
    if (conn == nullptr) continue;
    ::shutdown(fd, SHUT_RD);
    pump_read(*conn);
    touched.push_back(fd);
  }
  (void)now_ns;
}

void Reactor::pump_read(Conn& conn) {
  conn.fsm.on_readable([this, &conn](std::string_view line,
                                     std::uint64_t slot) {
    submit_line(conn, line, slot);
  });
}

void Reactor::submit_line(Conn& conn, std::string_view line,
                          std::uint64_t slot) {
  const int fd = conn.fd;
  const std::uint64_t gen = conn.gen;
  engine_.handle_line_async(
      line, conn.fsm.peer(),
      [this, fd, gen, slot](std::string&& response) {
        if (std::this_thread::get_id() == loop_thread_id_) {
          // Inline completion (refusal, ping/stats, cache hit): the
          // connection is alive — we are inside its pump.
          deliver(fd, gen, slot, std::move(response), now_ns_);
        } else {
          {
            std::lock_guard<std::mutex> lock(inbox_mutex_);
            inbox_completions_.push_back(
                {fd, gen, slot, std::move(response)});
          }
          ring();
        }
      });
}

void Reactor::deliver(int fd, std::uint64_t gen, std::uint64_t slot,
                      std::string&& response, std::uint64_t now_ns) {
  Conn* conn = find(fd);
  if (conn == nullptr || conn->gen != gen) return;  // connection died
  conn->fsm.complete(slot, std::move(response));
  conn->last_activity_ns = now_ns;
}

void Reactor::finalize(int fd, std::uint64_t now_ns) {
  Conn* conn = find(fd);
  if (conn == nullptr) return;
  if (!conn->fsm.finished() && conn->fsm.wants_write()) {
    conn->fsm.on_writable();
  }
  if (conn->fsm.finished()) {
    teardown(*conn);
    return;
  }
  if (conn->fsm.bytes_received() != conn->seen_received) {
    conn->seen_received = conn->fsm.bytes_received();
    conn->last_activity_ns = now_ns;
  }
  if (options_.write_timeout_ms > 0) {
    if (conn->fsm.wants_write() && !conn->write_armed) {
      conn->write_timer =
          wheel_.arm(now_ns + ms_to_ns(options_.write_timeout_ms),
                     timer_payload(fd, kWriteKind));
      conn->sent_at_write_arm = conn->fsm.bytes_sent();
      conn->write_armed = true;
    } else if (!conn->fsm.wants_write() && conn->write_armed) {
      wheel_.cancel(conn->write_timer);
      conn->write_armed = false;
    }
  }
}

void Reactor::handle_timer(const TimerWheel::Expired& fired,
                           std::uint64_t now_ns) {
  const int fd = static_cast<int>(fired.payload >> 1);
  const std::uint64_t kind = fired.payload & 1;
  Conn* conn = find(fd);
  if (conn == nullptr) return;

  if (kind == kIdleKind) {
    if (fired.id != conn->idle_timer) return;  // stale
    conn->idle_armed = false;
    const std::uint64_t idle_ns = ms_to_ns(options_.idle_timeout_ms);
    const std::uint64_t deadline = conn->last_activity_ns + idle_ns;
    // The idle clock only runs while we are waiting for request bytes:
    // in-flight compute or a pending flush re-arms a full window, like
    // the threaded loop whose idle budget restarts after each response.
    if (conn->fsm.idle() && conn->fsm.reading() && now_ns >= deadline) {
      conn->fsm.expire_idle();
      teardown(*conn);
      return;
    }
    const std::uint64_t next =
        conn->fsm.idle() ? deadline : now_ns + idle_ns;
    conn->idle_timer = wheel_.arm(next, timer_payload(fd, kIdleKind));
    conn->idle_armed = true;
    return;
  }

  // Write deadline: progress since arming re-arms (a slow-but-moving
  // peer is bounded per write_timeout per burst of progress); a fully
  // stalled peer is cut off.
  if (fired.id != conn->write_timer) return;  // stale
  conn->write_armed = false;
  if (!conn->fsm.wants_write()) return;
  if (conn->fsm.bytes_sent() != conn->sent_at_write_arm) {
    conn->write_timer =
        wheel_.arm(now_ns + ms_to_ns(options_.write_timeout_ms),
                   timer_payload(fd, kWriteKind));
    conn->sent_at_write_arm = conn->fsm.bytes_sent();
    conn->write_armed = true;
    return;
  }
  conn->fsm.expire_write();
  teardown(*conn);
}

void Reactor::teardown(Conn& conn) {
  static const obs::Counter closed("serve.conn.closed");
  if (conn.idle_armed) wheel_.cancel(conn.idle_timer);
  if (conn.write_armed) wheel_.cancel(conn.write_timer);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  closed.add();
  conns_.erase(conn.fd);  // destroys conn
}

}  // namespace tokenring::serve
