// Client-side retry pacing for the serve daemon's structured refusals.
//
// 429 (rate limited) and 503 (shed) responses carry a retry_after_ms
// hint. A well-behaved client waits at least that long, and additionally
// backs off exponentially with full jitter so a fleet of clients
// refused together does not return in lockstep and re-create the very
// overload that shed them (the classic thundering-herd failure). The
// bench harness (bench/serve_load.cpp) and the Python helper
// (scripts/serve_client.py) implement the same policy; this header is
// the C++ side.

#pragma once

#include <algorithm>
#include <cstdint>

#include "tokenring/common/rng.hpp"

namespace tokenring::serve {

struct BackoffPolicy {
  /// First-attempt ceiling for the jittered wait.
  std::uint64_t base_ns = 25'000'000;  // 25 ms
  /// Ceiling the exponential growth saturates at.
  std::uint64_t cap_ns = 2'000'000'000;  // 2 s
  double multiplier = 2.0;
};

/// Wait before retry number `attempt` (0-based): the server's
/// retry_after hint, plus a full-jitter exponential component —
/// uniform(0, min(cap, base * multiplier^attempt)) — so simultaneous
/// refusals spread out instead of stampeding back together.
inline std::uint64_t retry_delay_ns(const BackoffPolicy& policy, int attempt,
                                    std::uint64_t retry_after_hint_ns,
                                    Rng& rng) {
  double ceiling = static_cast<double>(policy.base_ns);
  for (int i = 0; i < attempt && ceiling < static_cast<double>(policy.cap_ns);
       ++i) {
    ceiling *= policy.multiplier;
  }
  ceiling = std::min(ceiling, static_cast<double>(policy.cap_ns));
  const auto jittered =
      static_cast<std::uint64_t>(rng.uniform(0.0, ceiling));
  return retry_after_hint_ns + jittered;
}

}  // namespace tokenring::serve
