#include "tokenring/serve/transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "tokenring/common/clock.hpp"

namespace tokenring::serve {

// ---- SocketIo ----------------------------------------------------------------

SocketIo::SocketIo(int fd) : fd_(fd) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
}

ssize_t SocketIo::recv_some(char* data, std::size_t size, int& err) {
  const ssize_t n = ::recv(fd_, data, size, 0);
  err = n < 0 ? errno : 0;
  return n;
}

ssize_t SocketIo::send_some(const char* data, std::size_t size, int& err) {
  // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not a process signal.
  const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
  err = n < 0 ? errno : 0;
  return n;
}

int SocketIo::wait(bool for_write, int timeout_ms, int& err) {
  pollfd p{fd_, static_cast<short>(for_write ? POLLOUT : POLLIN), 0};
  const int rc = ::poll(&p, 1, timeout_ms);
  err = rc < 0 ? errno : 0;
  // POLLERR/POLLHUP count as "ready": the next recv/send reports the
  // concrete error (or EOF) instead of this loop guessing.
  return rc;
}

void SocketIo::shutdown_both() { ::shutdown(fd_, SHUT_RDWR); }

// ---- TransportFaultPlan ------------------------------------------------------

TransportFaultPlan TransportFaultPlan::random(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0x1234'5678ULL);
  TransportFaultPlan plan;
  plan.seed = seed + 1;  // non-zero: chunk sizes are drawn, not fixed
  // Short reads/writes most runs; 1-byte dribble is the harshest framing
  // test and stays cheap.
  if (rng.bernoulli(0.8)) {
    plan.max_read_chunk = static_cast<std::size_t>(rng.uniform_int(1, 7));
  }
  if (rng.bernoulli(0.8)) {
    plan.max_write_chunk = static_cast<std::size_t>(rng.uniform_int(1, 7));
  }
  if (rng.bernoulli(0.5)) {
    plan.eintr_per_op = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  }
  // Occasional mid-stream kills, far enough in that some requests land.
  if (rng.bernoulli(0.25)) {
    plan.reset_read_after = static_cast<std::size_t>(rng.uniform_int(16, 256));
  }
  if (rng.bernoulli(0.25)) {
    plan.reset_write_after =
        static_cast<std::size_t>(rng.uniform_int(16, 256));
  }
  if (rng.bernoulli(0.3)) {
    plan.corrupt_read_at = static_cast<std::size_t>(rng.uniform_int(0, 128));
  }
  return plan;
}

// ---- FaultyIo ----------------------------------------------------------------

FaultyIo::FaultyIo(std::string input, const TransportFaultPlan& plan)
    : input_(std::move(input)),
      plan_(plan),
      rng_(plan.seed == 0 ? 1 : plan.seed) {
  if (plan_.corrupt_read_at < input_.size()) {
    input_[plan_.corrupt_read_at] =
        static_cast<char>(input_[plan_.corrupt_read_at] ^ 0x20);
  }
}

bool FaultyIo::inject_eintr(std::uint32_t& pending) {
  if (pending == 0) return false;
  --pending;
  ++eintr_injected_;
  return true;
}

std::size_t FaultyIo::chunk_limit(std::size_t requested, std::size_t cap) {
  if (cap == 0 || cap >= requested) return requested;
  if (plan_.seed == 0) return cap;
  return static_cast<std::size_t>(
      rng_.uniform_int(1, static_cast<std::int64_t>(cap)));
}

ssize_t FaultyIo::recv_some(char* data, std::size_t size, int& err) {
  if (inject_eintr(pending_recv_eintr_)) {
    err = EINTR;
    return -1;
  }
  pending_recv_eintr_ = plan_.eintr_per_op;
  if (plan_.eagain_every > 0 && ++recvs_called_ % plan_.eagain_every == 0) {
    err = EAGAIN;
    return -1;
  }
  if (shutdown_ || read_pos_ >= plan_.reset_read_after) {
    err = ECONNRESET;
    return -1;
  }
  if (read_pos_ >= input_.size()) {
    err = 0;
    return 0;  // orderly EOF
  }
  std::size_t n = std::min(size, input_.size() - read_pos_);
  n = std::min(n, plan_.reset_read_after - read_pos_);
  n = chunk_limit(n, plan_.max_read_chunk);
  std::copy_n(input_.data() + read_pos_, n, data);
  read_pos_ += n;
  err = 0;
  return static_cast<ssize_t>(n);
}

ssize_t FaultyIo::send_some(const char* data, std::size_t size, int& err) {
  if (inject_eintr(pending_send_eintr_)) {
    err = EINTR;
    return -1;
  }
  pending_send_eintr_ = plan_.eintr_per_op;
  if (plan_.eagain_every > 0 && ++sends_called_ % plan_.eagain_every == 0) {
    err = EAGAIN;
    return -1;
  }
  if (shutdown_ || output_.size() >= plan_.reset_write_after) {
    err = EPIPE;
    return -1;
  }
  std::size_t n = std::min(size, plan_.reset_write_after - output_.size());
  n = chunk_limit(n, plan_.max_write_chunk);
  output_.append(data, n);
  err = 0;
  return static_cast<ssize_t>(n);
}

int FaultyIo::wait(bool for_write, int timeout_ms, int& err) {
  (void)timeout_ms;  // no real time passes in-memory
  if (inject_eintr(pending_wait_eintr_)) {
    err = EINTR;
    return -1;
  }
  pending_wait_eintr_ = plan_.eintr_per_op;
  err = 0;
  if (!for_write && plan_.stall_every > 0 &&
      ++reads_waited_ % plan_.stall_every == 0) {
    return 0;  // the peer went quiet: report a poll timeout
  }
  return 1;
}

void FaultyIo::shutdown_both() { shutdown_ = true; }

// ---- Transport ---------------------------------------------------------------

Transport::Transport(ByteIo& io, std::function<std::uint64_t()> clock)
    : io_(io), clock_(clock ? std::move(clock) : steady_now_ns) {}

int Transport::remaining_ms(bool timed, std::uint64_t deadline_ns) const {
  if (!timed) return -1;
  const std::uint64_t now = clock_();
  if (now >= deadline_ns) return 0;
  // Round up: a 0.4 ms remainder must poll for 1 ms, not busy-spin at 0.
  return static_cast<int>((deadline_ns - now + 999'999) / 1'000'000);
}

IoResult Transport::read_some(char* data, std::size_t size, int timeout_ms) {
  const bool timed = timeout_ms >= 0;
  const std::uint64_t deadline_ns =
      timed ? clock_() + static_cast<std::uint64_t>(timeout_ms) * 1'000'000
            : 0;
  for (;;) {
    int err = 0;
    const int ready = io_.wait(false, remaining_ms(timed, deadline_ns), err);
    if (ready < 0) {
      if (err == EINTR) continue;  // re-arm with the remaining budget
      return {IoStatus::kError, 0};
    }
    if (ready == 0) return {IoStatus::kTimeout, 0};

    const ssize_t n = io_.recv_some(data, size, err);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kEof, 0};
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) continue;  // spurious wakeup
    return {IoStatus::kError, 0};
  }
}

IoStatus Transport::write_all(const char* data, std::size_t size,
                              int timeout_ms) {
  const bool timed = timeout_ms >= 0;
  const std::uint64_t deadline_ns =
      timed ? clock_() + static_cast<std::uint64_t>(timeout_ms) * 1'000'000
            : 0;
  while (size > 0) {
    int err = 0;
    const ssize_t n = io_.send_some(data, size, err);
    if (n > 0) {
      data += static_cast<std::size_t>(n);
      size -= static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && err == EINTR) continue;
    if (n < 0 && (err == EAGAIN || err == EWOULDBLOCK)) {
      const int budget = remaining_ms(timed, deadline_ns);
      if (timed && budget == 0) return IoStatus::kTimeout;
      const int ready = io_.wait(true, budget, err);
      if (ready < 0 && err == EINTR) continue;
      if (ready < 0) return IoStatus::kError;
      if (ready == 0) return IoStatus::kTimeout;
      continue;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

}  // namespace tokenring::serve
