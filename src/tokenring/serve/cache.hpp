// Sharded single-flight result cache for the admission-control service.
//
// Admission queries are a recurring stream over a small population of ring
// configurations (same stations, periods, bandwidth — operators tune, then
// re-ask), so the daemon caches the rendered result JSON keyed by the
// canonicalized query. A hit skips everything: kernel construction, the
// saturation search, even response rendering.
//
// Two production concerns shape the design:
//  * Sharding: the key hash picks one of N independent shards (own lock,
//    own LRU list), so cache lookups from many connection threads do not
//    serialize on one mutex.
//  * Single-flight: on a miss, exactly one caller computes; concurrent
//    callers for the same key block on the shard's condition variable and
//    reuse the landed result instead of duplicating a multi-millisecond
//    Monte Carlo sweep. A compute that throws wakes the waiters and lets
//    one of them retry (errors are not cached).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace tokenring::serve {

class ResultCache {
 public:
  struct Options {
    /// Independent shards; rounded up to at least 1.
    std::size_t shards = 16;
    /// Ready entries kept per shard; least-recently-used beyond that are
    /// evicted on insert.
    std::size_t capacity_per_shard = 1024;
  };

  struct Outcome {
    std::string value;
    bool hit = false;
  };

  explicit ResultCache(const Options& options);

  /// Return the cached value for `key`, or run `compute` (without holding
  /// the shard lock) and cache its result. Throws whatever `compute`
  /// throws; a failed compute leaves the cache unchanged.
  Outcome get_or_compute(const std::string& key,
                         const std::function<std::string()>& compute);

  /// Non-blocking probe: the value if `key` is ready (bumping the hit
  /// counter and LRU position exactly like a get_or_compute hit), nullopt
  /// when missing or still in flight. The reactor path answers ready hits
  /// inline on the event-loop thread and routes everything else through
  /// the batcher, so an event-loop thread never blocks on a single-flight
  /// wait.
  std::optional<std::string> try_get(const std::string& key);

  /// Ready entries across all shards (approximate under concurrency).
  std::size_t size() const;

  /// Advisory: true when `key` is cached or being computed right now, so
  /// answering it will not add compute load. Used by load shedding to
  /// keep serving hits while misses are refused; takes the shard lock but
  /// touches no LRU state or counters.
  bool likely_present(const std::string& key) const;

 private:
  struct Entry {
    bool ready = false;
    std::string value;
    /// Position in the shard's LRU list; valid only when ready.
    std::list<std::string>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable ready_cv;
    std::unordered_map<std::string, Entry> map;
    /// Most-recently-used keys first.
    std::list<std::string> lru;
  };

  Shard& shard_for(const std::string& key);

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tokenring::serve
