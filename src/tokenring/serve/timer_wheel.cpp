#include "tokenring/serve/timer_wheel.hpp"

#include <algorithm>

#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::serve {

TimerWheel::TimerWheel(std::uint64_t tick_ns, std::size_t slots)
    : tick_ns_(tick_ns) {
  TR_EXPECTS_MSG(tick_ns > 0, "timer wheel tick must be positive");
  slots_.resize(std::max<std::size_t>(1, slots));
}

TimerWheel::Id TimerWheel::arm(std::uint64_t deadline_ns,
                               std::uint64_t payload) {
  const Id id = next_id_++;
  // Deadlines at or behind the sweep cursor go into the next slot the
  // cursor will visit; their own slot was already passed this lap and
  // would not be swept again for a full rotation.
  const std::uint64_t cursor_tick = last_sweep_ns_ / tick_ns_;
  const std::uint64_t due_tick = deadline_ns / tick_ns_;
  const std::uint64_t placed_tick = std::max(due_tick, cursor_tick + 1);
  slots_[static_cast<std::size_t>(placed_tick % slots_.size())].push_back(
      {id, deadline_ns, payload});
  live_.emplace(id, deadline_ns);
  return id;
}

void TimerWheel::cancel(Id id) { live_.erase(id); }

void TimerWheel::expire(std::uint64_t now_ns, std::vector<Expired>& fired) {
  static const obs::Counter expirations("serve.timer.expirations");
  if (live_.empty()) {
    // Nothing armed: fast-forward so a long idle stretch does not cost a
    // slot-by-slot catch-up sweep later.
    last_sweep_ns_ = now_ns;
    return;
  }
  if (now_ns < last_sweep_ns_) return;  // monotonic clock hiccup: no-op

  // Sweep each slot the tick cursor passes, at most one full lap (beyond
  // a lap every slot has been visited once already).
  const std::uint64_t first_tick = last_sweep_ns_ / tick_ns_;
  const std::uint64_t last_tick = now_ns / tick_ns_;
  const std::uint64_t laps = last_tick - first_tick;
  const std::uint64_t ticks =
      std::min<std::uint64_t>(laps, slots_.size());
  std::vector<Entry> displaced;
  for (std::uint64_t t = 0; t < ticks; ++t) {
    auto& slot = slots_[static_cast<std::size_t>((first_tick + 1 + t) %
                                                 slots_.size())];
    std::size_t keep = 0;
    for (Entry& entry : slot) {
      const auto it = live_.find(entry.id);
      if (it == live_.end()) continue;  // cancelled: drop the tombstone
      if (entry.deadline_ns <= now_ns) {
        fired.push_back({entry.id, entry.payload});
        expirations.add();
        live_.erase(it);
        continue;
      }
      if (entry.deadline_ns / tick_ns_ <= last_tick) {
        // Due later within a tick the cursor has now passed: left here it
        // would wait a full lap for the next visit. Migrate to the slot
        // the cursor visits next so it fires on the following sweep.
        displaced.push_back(entry);
        continue;
      }
      slot[keep++] = entry;  // future lap: stays armed
    }
    slot.resize(keep);
  }
  if (!displaced.empty()) {
    auto& next_slot =
        slots_[static_cast<std::size_t>((last_tick + 1) % slots_.size())];
    next_slot.insert(next_slot.end(), displaced.begin(), displaced.end());
  }
  last_sweep_ns_ = now_ns;
}

int TimerWheel::poll_timeout_ms() const {
  if (live_.empty()) return -1;
  // One tick is the firing granularity; rounding up avoids a busy loop
  // when tick_ns_ < 1 ms.
  return static_cast<int>((tick_ns_ + 999'999) / 1'000'000);
}

}  // namespace tokenring::serve
