// Request batching onto the exec/ thread pool.
//
// Connection threads do not compute; they enqueue a job and block on its
// future. A single dispatcher thread drains whatever has accumulated —
// up to `max_group` jobs — and runs the whole group as one
// Executor::parallel_for, so a burst of N admission queries costs one
// group dispatch fanned across the pool lanes instead of N uncoordinated
// wakeups. There is no artificial batching window: while one group runs,
// new arrivals pile up and form the next group, which is exactly the
// load-adaptive behaviour wanted — singleton groups under light load,
// wide groups under burst.
//
// Jobs must not recursively use the group executor (nested parallel_for
// on one pool deadlocks); compute handlers run their internal work
// sequentially and get their parallelism across queries, plus the SoA
// lane parallelism inside each saturation search.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "tokenring/exec/executor.hpp"

namespace tokenring::serve {

class Batcher {
 public:
  /// `executor` outlives the Batcher and is reserved for group dispatch.
  /// `max_group` bounds one group (>= 1); `max_queue` bounds accepted-but-
  /// undispatched jobs so producers cannot balloon memory.
  Batcher(const exec::Executor& executor, std::size_t max_group,
          std::size_t max_queue = 4096);

  /// Drains every accepted job, then stops the dispatcher.
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Enqueue one job; blocks while the queue is full. The future carries
  /// the job's return value or its exception.
  std::future<std::string> submit(std::function<std::string()> job);

  /// Non-blocking admission: enqueue unless the undispatched queue is at
  /// capacity, in which case nullopt comes back immediately (the caller
  /// sheds with a structured 503 instead of queueing behind an overload).
  std::optional<std::future<std::string>> try_submit(
      std::function<std::string()> job);

  /// Jobs accepted but not yet finished (queued + in flight). The
  /// admission depth the load-shedding watermark compares against.
  std::size_t depth() const;

  /// Block until every job accepted so far has completed. New submissions
  /// during the drain are still accepted (the server stops feeding the
  /// batcher before draining on shutdown).
  void drain();

 private:
  struct Job {
    std::function<std::string()> fn;
    std::promise<std::string> promise;
  };

  void dispatch_loop();

  const exec::Executor& executor_;
  std::size_t max_group_;
  std::size_t max_queue_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::condition_variable idle_;
  std::deque<Job> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::thread dispatcher_;
};

}  // namespace tokenring::serve
