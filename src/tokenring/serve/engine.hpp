// Request engine of the admission-control service.
//
// handle_line() is the whole per-request pipeline, transport-free so tests
// drive it without sockets:
//
//   size gate (413) -> parse_json (400 + byte offset) -> parse_request
//   (400 naming the field) -> ping/stats answered inline -> rate limit
//   (429 + retry hint) -> result cache -> batcher -> compute.
//
// Compute handlers mirror the offline `tokenring_tool` subcommands call
// for call (same ring construction, same frame format, same analysis entry
// points), so a daemon verdict is bit-identical to what the CLI prints for
// the same query — the service is a faster path to the same answer, never
// a different answer.
//
// Compute runs on the Batcher's executor group dispatch; handlers
// themselves are sequential (nested parallel_for on one pool would
// deadlock) and the advise handler leans on the SoA lockstep batch inside
// the saturation search for its intra-query parallelism.

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "tokenring/exec/executor.hpp"
#include "tokenring/serve/batcher.hpp"
#include "tokenring/serve/cache.hpp"
#include "tokenring/serve/rate_limit.hpp"
#include "tokenring/serve/wire.hpp"

namespace tokenring::serve {

class Engine {
 public:
  struct Options {
    /// Worker threads for batched compute; 0 picks exec::default_jobs().
    std::size_t jobs = 0;
    /// Max compute jobs fanned out per batch group; 0 matches the pool
    /// width.
    std::size_t max_group = 0;
    /// Requests longer than this are rejected with a 413.
    std::size_t max_request_bytes = 1 << 20;
    ResultCache::Options cache;
    RateLimiter::Options limit;
  };

  /// `clock` returns monotonic nanoseconds; the default reads
  /// std::chrono::steady_clock. Injected so rate-limit tests control time.
  explicit Engine(const Options& options,
                  std::function<std::uint64_t()> clock = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Process one request line (no trailing newline) and return the
  /// response line. Never throws: every failure becomes a structured
  /// error response. `fallback_client` is the rate-limit key for requests
  /// without a "client" field (the server passes the peer address).
  std::string handle_line(std::string_view line,
                          const std::string& fallback_client);

  /// Block until every accepted compute job has finished (graceful
  /// shutdown: the server stops reading first, then drains).
  void drain();

  /// Ready entries currently cached.
  std::size_t cache_size() const { return cache_.size(); }

  // Compute handlers, public so tests can compare a daemon response's
  // "result" byte-for-byte against a direct library call.
  static std::string compute_check(const CheckQuery& query);
  static std::string compute_faultcheck(const CheckQuery& query);
  static std::string compute_advise(const AdviseQuery& query);

 private:
  std::string dispatch(const Request& request,
                       const std::string& fallback_client);
  std::string render_stats();

  Options options_;
  std::function<std::uint64_t()> clock_;
  exec::Executor executor_;
  ResultCache cache_;
  RateLimiter limiter_;
  Batcher batcher_;
};

}  // namespace tokenring::serve
