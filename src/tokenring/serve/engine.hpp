// Request engine of the admission-control service.
//
// handle_line_async() is the whole per-request pipeline, transport-free so
// tests drive it without sockets:
//
//   size gate (413) -> parse_json (400 + byte offset) -> parse_request
//   (400 naming the field) -> ping/stats answered inline -> deadline
//   pre-check (504) -> load shed (503, cache hits exempt) -> rate limit
//   (429 + retry hint) -> ready cache hits inline -> batcher job
//   (single-flight cache, deadline re-check 504) -> compute.
//
// Everything up to and including the ready-hit probe runs on the calling
// thread and never blocks, which is what lets a reactor thread multiplex
// thousands of connections through here. The batcher job owns a copy of
// the request and the completion callback: pool threads call `done`, and
// the reactor posts the response back to the connection's owning shard.
// handle_line() is a blocking wrapper over the same pipeline for the
// thread-per-connection front end and the tests.
//
// Overload policy (see DESIGN.md §4h): a request that cannot be answered
// usefully is refused as early and as cheaply as possible. Expired
// deadlines are detected before any queueing (the client has already
// given up; computing would be pure waste), then misses are shed against
// the batcher's high-water mark (hits and in-flight joins cost no
// compute, so they keep flowing even under overload), and only then does
// the rate limiter charge the client. Inside the batcher each job
// re-checks its deadline at compute start, so work that expired while
// queued is skipped, not executed.
//
// Compute handlers mirror the offline `tokenring_tool` subcommands call
// for call (same ring construction, same frame format, same analysis entry
// points), so a daemon verdict is bit-identical to what the CLI prints for
// the same query — the service is a faster path to the same answer, never
// a different answer.
//
// Compute runs on the Batcher's executor group dispatch; handlers
// themselves are sequential (nested parallel_for on one pool would
// deadlock) and the advise handler leans on the SoA lockstep batch inside
// the saturation search for its intra-query parallelism.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "tokenring/exec/executor.hpp"
#include "tokenring/serve/batcher.hpp"
#include "tokenring/serve/cache.hpp"
#include "tokenring/serve/rate_limit.hpp"
#include "tokenring/serve/wire.hpp"

namespace tokenring::serve {

class Engine {
 public:
  struct Options {
    /// Worker threads for batched compute; 0 picks exec::default_jobs().
    std::size_t jobs = 0;
    /// Max compute jobs fanned out per batch group; 0 matches the pool
    /// width.
    std::size_t max_group = 0;
    /// Requests longer than this are rejected with a 413.
    std::size_t max_request_bytes = 1 << 20;
    /// Load-shedding watermark: a compute request that would miss the
    /// cache is refused with a 503 once this many jobs are queued or in
    /// flight. 0 sheds every miss (serve-from-cache-only mode).
    std::size_t high_water = 512;
    ResultCache::Options cache;
    RateLimiter::Options limit;
  };

  /// `clock` returns monotonic nanoseconds; the default reads
  /// std::chrono::steady_clock. Injected so rate-limit tests control time.
  explicit Engine(const Options& options,
                  std::function<std::uint64_t()> clock = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Invoked exactly once with the finished response line. May run inline
  /// on the calling thread (refusals, ping/stats, cache hits) or later on
  /// a batcher pool thread (compute); callers that need thread affinity
  /// (the reactor) re-route from inside the callback.
  using Completion = std::function<void(std::string&&)>;

  /// Process one request line (no trailing newline) and return the
  /// response line. Never throws: every failure becomes a structured
  /// error response. `fallback_client` is the rate-limit key for requests
  /// without a "client" field (the server passes the peer address).
  /// Blocking wrapper over handle_line_async — one pipeline, two calling
  /// conventions.
  std::string handle_line(std::string_view line,
                          const std::string& fallback_client);

  /// Asynchronous form for the reactor front end: the event-loop thread
  /// runs only the cheap gates (size/parse, ping/stats, deadline
  /// pre-check, load shed, rate limit, ready cache hits) and never blocks;
  /// anything needing compute — including single-flight joins on an
  /// in-flight key — is handed to the batcher, whose pool thread invokes
  /// `done`. The request is copied into the job, so the caller's line
  /// buffer may be reused the moment this returns.
  void handle_line_async(std::string_view line,
                         const std::string& fallback_client, Completion done);

  /// Block until every accepted compute job has finished (graceful
  /// shutdown: the server stops reading first, then drains).
  void drain();

  /// Ready entries currently cached.
  std::size_t cache_size() const { return cache_.size(); }

  /// The admission queue, public so overload tests can wedge it with a
  /// gated job and observe shedding deterministically (same precedent as
  /// the public compute handlers below).
  Batcher& batcher() { return batcher_; }

  // Compute handlers, public so tests can compare a daemon response's
  // "result" byte-for-byte against a direct library call.
  static std::string compute_check(const CheckQuery& query);
  static std::string compute_faultcheck(const CheckQuery& query);
  static std::string compute_advise(const AdviseQuery& query);

 private:
  void dispatch_async(Request request, const std::string& fallback_client,
                      std::uint64_t start_ns, Completion done);
  std::string render_stats();
  /// Back-off hint for a shed response: EWMA job cost scaled by the
  /// backlog ahead of the request, floored so a cold server still hints
  /// a sane pause.
  std::uint64_t shed_retry_after_ns() const;

  Options options_;
  std::function<std::uint64_t()> clock_;
  exec::Executor executor_;
  ResultCache cache_;
  RateLimiter limiter_;
  Batcher batcher_;
  /// EWMA of one compute job's wall time [ns], relaxed atomics (an
  /// approximate hint, not a synchronized quantity).
  std::atomic<std::uint64_t> job_ewma_ns_{0};
};

}  // namespace tokenring::serve
