// Token-bucket rate limiting for the admission-control service.
//
// The bucket is the classic refill-on-demand shape (Envoy's TokenBucket
// `consume` interface is the exemplar): capacity `burst` tokens, refilled
// at `rate` tokens per second, consume one token per request. Time is
// injected as a nanosecond count from a monotonic clock, never read
// internally, so the refill arithmetic is deterministic and property-
// testable without sleeping.
//
// RateLimiter keys one bucket per client id (the request's "client" field,
// or a per-connection fallback) and answers allow/deny plus a retry-after
// hint for the 429-style structured rejection.

#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace tokenring::serve {

/// Deterministic token bucket over an injected monotonic clock.
class TokenBucket {
 public:
  /// `rate_per_s` tokens arrive per second up to a cap of `burst` tokens;
  /// the bucket starts full. Both must be > 0.
  TokenBucket(double rate_per_s, double burst, std::uint64_t now_ns);

  /// Refill for the time elapsed since the last call, then try to take
  /// `tokens`. Returns true (and debits) iff the bucket holds enough.
  /// `now_ns` values must be non-decreasing; a stale timestamp is clamped
  /// to the last seen one rather than refilling backwards.
  bool consume(std::uint64_t now_ns, double tokens = 1.0);

  /// Tokens available as of the last consume() call.
  double available() const { return tokens_; }

  /// Nanoseconds from the last consume() until `tokens` would be
  /// available (0 when they already are). The 429 retry-after hint.
  std::uint64_t nanos_until(double tokens) const;

 private:
  double rate_per_ns_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_;
};

/// Per-client token buckets behind one lock. Thread-safe.
class RateLimiter {
 public:
  struct Options {
    /// Requests per second granted to each client; 0 disables limiting.
    double rate_per_s = 0.0;
    /// Bucket capacity; 0 means one second's worth of tokens (== rate).
    double burst = 0.0;
    /// Hard cap on tracked clients. When a new client would exceed it,
    /// every bucket is dropped and restarted full — a coarse reset that
    /// bounds memory while erring on the side of admitting traffic.
    std::size_t max_clients = 4096;
  };

  struct Verdict {
    bool allowed = true;
    /// Suggested client back-off when !allowed.
    std::uint64_t retry_after_ns = 0;
  };

  explicit RateLimiter(const Options& options);

  bool enabled() const { return options_.rate_per_s > 0.0; }
  double burst() const;

  /// Charge one request to `client` at time `now_ns`.
  Verdict check(const std::string& client, std::uint64_t now_ns);

 private:
  Options options_;
  std::mutex mutex_;
  std::unordered_map<std::string, TokenBucket> buckets_;
};

}  // namespace tokenring::serve
