#include "tokenring/serve/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

#include "tokenring/analysis/pdp.hpp"
#include "tokenring/analysis/ttp.hpp"
#include "tokenring/common/checks.hpp"
#include "tokenring/common/clock.hpp"
#include "tokenring/fault/margins.hpp"
#include "tokenring/net/standards.hpp"
#include "tokenring/obs/json.hpp"
#include "tokenring/obs/registry.hpp"
#include "tokenring/planner/advisor.hpp"

namespace tokenring::serve {

namespace {

/// Thrown by a batched job that found its deadline already expired at
/// compute start; dispatch turns it into a 504.
struct DeadlineExceeded {
  double elapsed_ms = 0.0;
};

/// Same protocol split as tokenring_tool's parse_protocol (names are
/// validated at parse time, so no error path here).
struct ProtocolChoice {
  bool is_ttp = false;
  analysis::PdpVariant variant = analysis::PdpVariant::kStandard8025;
};

ProtocolChoice protocol_choice(const std::string& name) {
  ProtocolChoice out;
  if (name == "fddi") {
    out.is_ttp = true;
  } else if (name == "modified8025") {
    out.variant = analysis::PdpVariant::kModified8025;
  }
  return out;
}

/// Same ring sizing rule as tokenring_tool.
int ring_size_for(const msg::MessageSet& set) {
  int n = std::max<int>(2, static_cast<int>(set.size()));
  for (const auto& s : set.streams()) n = std::max(n, s.station + 1);
  return n;
}

/// Request latency buckets [us], log-spaced from sub-cache-hit to
/// multi-second Monte Carlo sweeps.
const std::vector<double>& latency_bounds_us() {
  static const std::vector<double> bounds = {
      1,    2,    5,     10,    20,    50,     100,    200,     500,
      1000, 2000, 5000,  10000, 20000, 50000,  100000, 200000,  500000,
      1000000, 2000000, 5000000};
  return bounds;
}

}  // namespace

Engine::Engine(const Options& options, std::function<std::uint64_t()> clock)
    : options_(options),
      clock_(clock ? std::move(clock) : steady_now_ns),
      executor_(options.jobs),
      cache_(options.cache),
      limiter_(options.limit),
      // The queue bound tracks the shed watermark so the blocking-submit
      // path can never build a backlog the watermark would have refused;
      // high_water == 0 (cache-only mode) still needs a 1-slot queue for
      // the batcher's invariants.
      batcher_(executor_,
               options.max_group > 0 ? options.max_group : executor_.jobs(),
               std::max<std::size_t>(1, options.high_water)) {}

void Engine::drain() { batcher_.drain(); }

std::string Engine::handle_line(std::string_view line,
                                const std::string& fallback_client) {
  std::mutex mutex;
  std::condition_variable done_cv;
  std::string response;
  bool done = false;
  handle_line_async(line, fallback_client, [&](std::string&& r) {
    std::lock_guard<std::mutex> lock(mutex);
    response = std::move(r);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mutex);
  done_cv.wait(lock, [&] { return done; });
  return response;
}

void Engine::handle_line_async(std::string_view line,
                               const std::string& fallback_client,
                               Completion done) {
  static const obs::Counter requests("serve.requests");
  requests.add();
  const std::uint64_t start_ns = clock_();

  // Every exit path reports its latency at completion time, wherever the
  // response was produced (inline refusal or pool-thread compute).
  Completion finish = [this, start_ns,
                       done = std::move(done)](std::string&& response) {
    static const obs::Histogram latency("serve.request_us",
                                        latency_bounds_us());
    latency.observe(static_cast<double>(clock_() - start_ns) * 1e-3);
    done(std::move(response));
  };

  if (line.size() > options_.max_request_bytes) {
    finish(error_response(
        "", 413,
        "request exceeds " + std::to_string(options_.max_request_bytes) +
            " bytes"));
    return;
  }
  const obs::JsonParseResult parsed = obs::parse_json(line);
  if (!parsed.ok) {
    finish(parse_error_response(parsed.error_offset, parsed.error));
    return;
  }
  Request request;
  std::string error;
  if (!parse_request(parsed.value, request, error)) {
    finish(error_response(request.id_token, 400, error));
    return;
  }
  dispatch_async(std::move(request), fallback_client, start_ns,
                 std::move(finish));
}

std::uint64_t Engine::shed_retry_after_ns() const {
  // A cold server has no job history; 25 ms is long enough to let one
  // batch group clear and short enough not to stall an interactive
  // client.
  constexpr std::uint64_t kFloorNs = 25'000'000;
  const std::uint64_t ewma = job_ewma_ns_.load(std::memory_order_relaxed);
  const std::size_t lanes = std::max<std::size_t>(1, executor_.jobs());
  const std::uint64_t backlog_ns =
      ewma * static_cast<std::uint64_t>(batcher_.depth() + 1) / lanes;
  return std::max(kFloorNs, backlog_ns);
}

void Engine::dispatch_async(Request request, const std::string& fallback_client,
                            std::uint64_t start_ns, Completion done) {
  // ping and stats are control-plane traffic: answered inline, never rate
  // limited, never shed, never cached.
  if (request.type == RequestType::kPing) {
    done(success_response(request.id_token, request.type, false,
                          "{\"message\":\"pong\"}"));
    return;
  }
  if (request.type == RequestType::kStats) {
    done(success_response(request.id_token, request.type, false,
                          render_stats()));
    return;
  }

  static const obs::Counter deadline_expired("serve.deadline_expired");
  static const obs::Counter shed("serve.shed");

  // Overload gates, cheapest refusal first (DESIGN.md §4h).
  const std::uint64_t deadline_ns =
      request.deadline_ms > 0.0
          ? static_cast<std::uint64_t>(request.deadline_ms * 1e6)
          : 0;
  if (deadline_ns > 0) {
    const std::uint64_t elapsed = clock_() - start_ns;
    if (elapsed >= deadline_ns) {
      deadline_expired.add();
      done(timeout_response(request.id_token,
                            static_cast<double>(elapsed) * 1e-6));
      return;
    }
  }

  std::string key = cache_key(request);
  if (batcher_.depth() >= options_.high_water && !cache_.likely_present(key)) {
    // The watermark only refuses work that would *add* compute: cached
    // (or already-in-flight) answers keep flowing under overload.
    shed.add();
    done(shed_response(request.id_token, shed_retry_after_ns()));
    return;
  }

  const std::string& client =
      request.client.empty() ? fallback_client : request.client;
  const RateLimiter::Verdict verdict = limiter_.check(client, clock_());
  if (!verdict.allowed) {
    done(rate_limited_response(request.id_token, verdict.retry_after_ns));
    return;
  }

  // Ready hits are answered on the calling thread: no queueing, no copy
  // of the compute pipeline, and — for the reactor — no thread hop.
  if (std::optional<std::string> hit = cache_.try_get(key)) {
    done(success_response(request.id_token, request.type, true,
                          std::move(*hit)));
    return;
  }

  // Miss or in-flight: the batcher job owns the request and the
  // completion. The single-flight join happens inside the job, so a
  // reactor thread never waits on another request's compute; if the
  // computing job fails, a waiting joiner wakes and retries the compute
  // itself under its own deadline (cache.hpp semantics).
  const std::string id_token = request.id_token;
  Completion done_if_refused = done;  // survives the job being rejected
  auto job = [this, request = std::move(request), key = std::move(key),
              start_ns, deadline_ns, done = std::move(done)]() -> std::string {
    std::string response;
    try {
      const ResultCache::Outcome outcome = cache_.get_or_compute(
          key, [this, &request, start_ns, deadline_ns] {
            // The queue wait may have consumed the whole budget; skip
            // the compute rather than produce an answer nobody reads.
            const std::uint64_t begun = clock_();
            if (deadline_ns > 0 && begun - start_ns >= deadline_ns) {
              throw DeadlineExceeded{
                  static_cast<double>(begun - start_ns) * 1e-6};
            }
            std::string value;
            switch (request.type) {
              case RequestType::kCheck:
                value = compute_check(request.check);
                break;
              case RequestType::kFaultcheck:
                value = compute_faultcheck(request.check);
                break;
              default:
                value = compute_advise(request.advise);
                break;
            }
            // EWMA (alpha 1/8) of job cost feeds the shed back-off
            // hint; relaxed is fine, it is an estimate.
            const std::uint64_t took = clock_() - begun;
            const std::uint64_t old =
                job_ewma_ns_.load(std::memory_order_relaxed);
            job_ewma_ns_.store(old == 0 ? took : old - old / 8 + took / 8,
                               std::memory_order_relaxed);
            return value;
          });
      response = success_response(request.id_token, request.type, outcome.hit,
                                  outcome.value);
    } catch (const DeadlineExceeded& e) {
      deadline_expired.add();
      response = timeout_response(request.id_token, e.elapsed_ms);
    } catch (const std::exception& e) {
      static const obs::Counter failures("serve.compute_failures");
      failures.add();
      response = error_response(request.id_token, 500, e.what());
    }
    done(std::move(response));
    return std::string();  // the future's value is unused; done() is the
                           // delivery path
  };
  // Admission can race: the watermark passed above, but the queue filled
  // before this submit. Shed instead of blocking.
  if (!batcher_.try_submit(std::move(job))) {
    shed.add();
    done_if_refused(shed_response(id_token, shed_retry_after_ns()));
    return;
  }
}

std::string Engine::compute_check(const CheckQuery& query) {
  const ProtocolChoice proto = protocol_choice(query.protocol);
  const BitsPerSecond bw = mbps(query.bandwidth_mbps);
  const int n = ring_size_for(query.set);

  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_object();
  w.key("protocol").value_string(query.protocol);
  if (proto.is_ttp) {
    analysis::TtpParams p;
    p.ring = net::fddi_ring(n);
    p.frame = p.async_frame = net::paper_frame_format();
    const auto v = analysis::ttp_schedulable(query.set, p, bw);
    w.key("schedulable").value_bool(v.schedulable);
    w.key("ttrt_ms").value_number(to_milliseconds(v.ttrt));
    w.key("allocated_ms").value_number(to_milliseconds(v.allocated));
    w.key("available_ms").value_number(to_milliseconds(v.available));
  } else {
    analysis::PdpParams p;
    p.ring = net::ieee8025_ring(n);
    p.frame = net::paper_frame_format();
    p.variant = proto.variant;
    const auto v = analysis::pdp_schedulable(query.set, p, bw);
    w.key("schedulable").value_bool(v.schedulable);
    w.key("blocking_us").value_number(to_microseconds(v.blocking));
    w.key("misses").begin_array();
    for (const auto& r : v.reports) {
      if (r.schedulable) continue;
      w.begin_object();
      w.key("station").value_int(r.stream.station);
      w.key("augmented_ms").value_number(to_milliseconds(r.augmented_length));
      w.key("period_ms").value_number(to_milliseconds(r.stream.period));
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return os.str();
}

std::string Engine::compute_faultcheck(const CheckQuery& query) {
  const ProtocolChoice proto = protocol_choice(query.protocol);
  const BitsPerSecond bw = mbps(query.bandwidth_mbps);
  const int n = ring_size_for(query.set);
  const Seconds noise = milliseconds(query.noise_ms);

  bool fault_free = false;
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_object();
  w.key("protocol").value_string(query.protocol);
  w.key("noise_ms").value_number(query.noise_ms);

  std::ostringstream margins;
  obs::JsonWriter mw(margins);
  mw.set_strict(true);
  mw.begin_array();
  const auto add_row = [&](fault::FaultKind kind,
                           const fault::FaultMarginReport& fmr) {
    fault_free = fmr.fault_free_schedulable;
    mw.begin_object();
    mw.key("fault_kind").value_string(fault::to_string(kind));
    mw.key("recovery_us").value_number(to_microseconds(fmr.recovery_per_fault));
    if (fmr.margin < 0) {
      mw.key("margin").value_null();
    } else {
      mw.key("margin").value_int(fmr.margin);
    }
    mw.end_object();
  };

  if (proto.is_ttp) {
    analysis::TtpParams p;
    p.ring = net::fddi_ring(n);
    p.frame = p.async_frame = net::paper_frame_format();
    for (fault::FaultKind kind : fault::kAllFaultKinds) {
      if (kind == fault::FaultKind::kStationRejoin) continue;  // = crash cost
      fault::FaultBudget budget{kind, noise};
      add_row(kind, fault::ttp_fault_margin(query.set, p, bw, 0.0, budget));
    }
  } else {
    analysis::PdpParams p;
    p.ring = net::ieee8025_ring(n);
    p.frame = net::paper_frame_format();
    p.variant = proto.variant;
    for (fault::FaultKind kind : fault::kAllFaultKinds) {
      if (kind == fault::FaultKind::kStationRejoin) continue;  // = crash cost
      fault::FaultBudget budget{kind, noise};
      add_row(kind, fault::pdp_fault_margin(query.set, p, bw, budget));
    }
  }
  mw.end_array();

  w.key("schedulable").value_bool(fault_free);
  w.key("margins").value_raw(margins.str());
  w.end_object();
  return os.str();
}

std::string Engine::compute_advise(const AdviseQuery& query) {
  planner::TrafficProfile profile;
  profile.num_stations = query.stations;
  profile.mean_period = milliseconds(query.mean_period_ms);
  profile.period_ratio = query.period_ratio;

  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_object();
  w.key("recommendations").begin_array();
  for (double bw : query.bandwidths_mbps) {
    // The inline overload: batch jobs must not re-enter the group
    // executor, and the recommendation is identical for every (jobs,
    // batch) combination, so this matches `tokenring_tool advise`.
    const auto rec = planner::recommend_protocol(
        profile, mbps(bw), static_cast<std::size_t>(query.sets), query.seed);
    w.begin_object();
    w.key("bandwidth_mbps").value_number(bw);
    w.key("ieee8025").value_number(rec.ieee8025);
    w.key("modified8025").value_number(rec.modified8025);
    w.key("fddi").value_number(rec.fddi);
    w.key("resil_8025").value_number(rec.modified8025_resilience);
    w.key("resil_fddi").value_number(rec.fddi_resilience);
    w.key("recommend").value_string(planner::to_string(rec.best));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return os.str();
}

std::string Engine::render_stats() {
  const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_object();
  w.key("cache_entries").value_uint(cache_.size());
  w.key("batch_depth").value_uint(batcher_.depth());
  w.key("counters").begin_object();
  for (const auto& [name, value] : snapshot.counters) {
    w.key(name).value_uint(value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : snapshot.gauges) {
    w.key(name).value_uint(value);
  }
  w.end_object();
  const auto it = snapshot.histograms.find("serve.request_us");
  w.key("latency_us").begin_object();
  if (it != snapshot.histograms.end()) {
    w.key("count").value_uint(it->second.total);
    w.key("p50").value_number(histogram_percentile(it->second, 0.50));
    w.key("p90").value_number(histogram_percentile(it->second, 0.90));
    w.key("p99").value_number(histogram_percentile(it->second, 0.99));
  } else {
    w.key("count").value_uint(0);
  }
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace tokenring::serve
