#include "tokenring/serve/cache.hpp"

#include <utility>

#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::serve {

ResultCache::ResultCache(const Options& options) : options_(options) {
  if (options_.shards == 0) options_.shards = 1;
  TR_EXPECTS_MSG(options_.capacity_per_shard > 0,
                 "cache capacity must be >= 1 entry per shard");
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

ResultCache::Outcome ResultCache::get_or_compute(
    const std::string& key, const std::function<std::string()>& compute) {
  static const obs::Counter hits("serve.cache.hits");
  static const obs::Counter misses("serve.cache.misses");
  static const obs::Counter waits("serve.cache.singleflight_waits");
  static const obs::Counter evictions("serve.cache.evictions");

  Shard& shard = shard_for(key);
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    while (true) {
      auto it = shard.map.find(key);
      if (it == shard.map.end()) break;  // we become the computer
      if (it->second.ready) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
        hits.add();
        return {it->second.value, true};
      }
      // Someone else is computing this key right now; wait for it to land
      // (ready) or fail (entry erased), then re-check.
      waits.add();
      shard.ready_cv.wait(lock);
    }
    shard.map.emplace(key, Entry{});  // not ready: the in-flight marker
    misses.add();
  }

  std::string value;
  try {
    value = compute();
  } catch (...) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.erase(key);
    shard.ready_cv.notify_all();
    throw;
  }

  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(key);
    // The marker cannot have been evicted (only ready entries are), so it
    // is still there unless the map was externally cleared — tolerate that
    // by re-inserting.
    if (it == shard.map.end()) it = shard.map.emplace(key, Entry{}).first;
    shard.lru.push_front(key);
    it->second.ready = true;
    it->second.value = value;
    it->second.lru_pos = shard.lru.begin();
    while (shard.lru.size() > options_.capacity_per_shard) {
      const std::string& victim = shard.lru.back();
      shard.map.erase(victim);
      shard.lru.pop_back();
      evictions.add();
    }
    shard.ready_cv.notify_all();
  }
  return {std::move(value), false};
}

std::optional<std::string> ResultCache::try_get(const std::string& key) {
  static const obs::Counter hits("serve.cache.hits");
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || !it->second.ready) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  hits.add();
  return it->second.value;
}

bool ResultCache::likely_present(const std::string& key) const {
  const Shard& shard =
      *shards_[std::hash<std::string>{}(key) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mutex);
  // An in-flight (not-ready) marker counts: the answer is already being
  // paid for, so joining its single-flight wait adds no compute load.
  return shard.map.find(key) != shard.map.end();
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace tokenring::serve
