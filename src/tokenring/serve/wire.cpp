#include "tokenring/serve/wire.hpp"

#include <sstream>
#include <utility>

#include "tokenring/common/checks.hpp"

namespace tokenring::serve {

namespace {

/// Render a scalar JsonValue back to its JSON token (for the id echo).
bool render_scalar(const obs::JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case obs::JsonValue::Kind::kNull:
      out = "null";
      return true;
    case obs::JsonValue::Kind::kBool:
      out = v.as_bool() ? "true" : "false";
      return true;
    case obs::JsonValue::Kind::kNumber:
      out = v.number_token();
      return true;
    case obs::JsonValue::Kind::kString: {
      std::string quoted = obs::escape_json(v.as_string());
      quoted.insert(quoted.begin(), '"');
      quoted.push_back('"');
      out = std::move(quoted);
      return true;
    }
    default:
      return false;
  }
}

bool fail(std::string& error, std::string message) {
  error = std::move(message);
  return false;
}

/// Finite number >= `min`; `name` feeds the 400 message.
bool read_number(const obs::JsonValue& v, const char* name, double min,
                 double& out, std::string& error) {
  if (!v.is_number()) return fail(error, std::string("\"") + name + "\" must be a number");
  const double d = v.as_double();
  if (!(d >= min)) {
    return fail(error, std::string("\"") + name + "\" must be >= " +
                           obs::json_number(min));
  }
  out = d;
  return true;
}

bool read_int(const obs::JsonValue& v, const char* name, std::int64_t min,
              std::int64_t& out, std::string& error) {
  if (!v.is_number()) return fail(error, std::string("\"") + name + "\" must be a number");
  try {
    out = v.as_int64();
  } catch (const PreconditionError&) {
    return fail(error, std::string("\"") + name + "\" must be an integer");
  }
  if (out < min) {
    return fail(error, std::string("\"") + name + "\" must be >= " +
                           std::to_string(min));
  }
  return true;
}

bool known_protocol(const std::string& name) {
  return name == "fddi" || name == "ieee8025" || name == "modified8025";
}

bool parse_streams(const obs::JsonValue& v, msg::MessageSet& out,
                   std::string& error) {
  if (!v.is_array() || v.items().empty()) {
    return fail(error, "\"streams\" must be a non-empty array");
  }
  for (std::size_t i = 0; i < v.items().size(); ++i) {
    const obs::JsonValue& item = v.items()[i];
    const std::string where = "streams[" + std::to_string(i) + "]";
    if (!item.is_object()) return fail(error, where + " must be an object");
    msg::SyncStream s;
    double period_ms = 0.0;
    double deadline_ms = 0.0;
    bool have_period = false;
    bool have_payload = false;
    for (const auto& [key, value] : item.members()) {
      if (key == "station") {
        std::int64_t station = 0;
        if (!read_int(value, "station", 0, station, error)) {
          return fail(error, where + ": " + error);
        }
        s.station = static_cast<int>(station);
      } else if (key == "period_ms") {
        if (!read_number(value, "period_ms", 0.0, period_ms, error)) {
          return fail(error, where + ": " + error);
        }
        have_period = true;
      } else if (key == "payload_bits") {
        if (!read_number(value, "payload_bits", 0.0, s.payload_bits, error)) {
          return fail(error, where + ": " + error);
        }
        have_payload = true;
      } else if (key == "deadline_ms") {
        if (!read_number(value, "deadline_ms", 0.0, deadline_ms, error)) {
          return fail(error, where + ": " + error);
        }
      } else {
        return fail(error, where + ": unknown field \"" + key + "\"");
      }
    }
    if (!have_period || !have_payload) {
      return fail(error,
                  where + " needs \"period_ms\" and \"payload_bits\"");
    }
    s.period = milliseconds(period_ms);
    s.relative_deadline = milliseconds(deadline_ms);
    try {
      s.validate();
    } catch (const PreconditionError& e) {
      return fail(error, where + ": " + e.what());
    }
    out.add(s);
  }
  return true;
}

bool parse_bandwidths(const obs::JsonValue& v, std::vector<double>& out,
                      std::string& error) {
  if (!v.is_array() || v.items().empty()) {
    return fail(error, "\"bandwidths_mbps\" must be a non-empty array");
  }
  out.clear();
  for (const obs::JsonValue& item : v.items()) {
    double bw = 0.0;
    if (!item.is_number() || !((bw = item.as_double()) > 0.0)) {
      return fail(error,
                  "\"bandwidths_mbps\" entries must be positive numbers");
    }
    out.push_back(bw);
  }
  return true;
}

}  // namespace

const char* to_string(RequestType type) {
  switch (type) {
    case RequestType::kPing:
      return "ping";
    case RequestType::kStats:
      return "stats";
    case RequestType::kCheck:
      return "check";
    case RequestType::kFaultcheck:
      return "faultcheck";
    case RequestType::kAdvise:
      return "advise";
  }
  return "?";
}

bool parse_request(const obs::JsonValue& doc, Request& out,
                   std::string& error) {
  if (!doc.is_object()) {
    return fail(error, "request must be a JSON object");
  }
  // Pull the id first so even a failed parse can echo it.
  if (const obs::JsonValue* id = doc.find("id")) {
    if (!render_scalar(*id, out.id_token)) {
      return fail(error, "\"id\" must be a scalar");
    }
  }
  const obs::JsonValue* type = doc.find("type");
  if (!type) return fail(error, "missing \"type\"");
  if (!type->is_string()) return fail(error, "\"type\" must be a string");
  const std::string& name = type->as_string();
  if (name == "ping") {
    out.type = RequestType::kPing;
  } else if (name == "stats") {
    out.type = RequestType::kStats;
  } else if (name == "check") {
    out.type = RequestType::kCheck;
  } else if (name == "faultcheck") {
    out.type = RequestType::kFaultcheck;
  } else if (name == "advise") {
    out.type = RequestType::kAdvise;
  } else {
    return fail(error, "unknown type \"" + name +
                           "\" (ping|stats|check|faultcheck|advise)");
  }

  const bool is_check = out.type == RequestType::kCheck ||
                        out.type == RequestType::kFaultcheck;
  const bool is_advise = out.type == RequestType::kAdvise;
  const bool is_compute = is_check || is_advise;
  bool have_streams = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "id" || key == "type") continue;
    if (key == "client") {
      if (!value.is_string()) return fail(error, "\"client\" must be a string");
      out.client = value.as_string();
    } else if (is_compute && key == "deadline_ms") {
      if (!read_number(value, "deadline_ms", 0.0, out.deadline_ms, error)) {
        return false;
      }
    } else if (is_check && key == "protocol") {
      if (!value.is_string() || !known_protocol(value.as_string())) {
        return fail(error,
                    "\"protocol\" must be ieee8025|modified8025|fddi");
      }
      out.check.protocol = value.as_string();
    } else if (is_check && key == "bandwidth_mbps") {
      if (!read_number(value, "bandwidth_mbps", 0.0, out.check.bandwidth_mbps,
                       error) ||
          out.check.bandwidth_mbps <= 0.0) {
        return error.empty()
                   ? fail(error, "\"bandwidth_mbps\" must be > 0")
                   : false;
      }
    } else if (is_check && key == "streams") {
      if (!parse_streams(value, out.check.set, error)) return false;
      have_streams = true;
    } else if (out.type == RequestType::kFaultcheck && key == "noise_ms") {
      if (!read_number(value, "noise_ms", 0.0, out.check.noise_ms, error)) {
        return false;
      }
    } else if (is_advise && key == "stations") {
      std::int64_t stations = 0;
      if (!read_int(value, "stations", 1, stations, error)) return false;
      out.advise.stations = static_cast<int>(stations);
    } else if (is_advise && key == "mean_period_ms") {
      if (!read_number(value, "mean_period_ms", 0.0,
                       out.advise.mean_period_ms, error) ||
          out.advise.mean_period_ms <= 0.0) {
        return error.empty()
                   ? fail(error, "\"mean_period_ms\" must be > 0")
                   : false;
      }
    } else if (is_advise && key == "period_ratio") {
      if (!read_number(value, "period_ratio", 1.0, out.advise.period_ratio,
                       error)) {
        return false;
      }
    } else if (is_advise && key == "bandwidths_mbps") {
      if (!parse_bandwidths(value, out.advise.bandwidths_mbps, error)) {
        return false;
      }
    } else if (is_advise && key == "sets") {
      std::int64_t sets = 0;
      if (!read_int(value, "sets", 1, sets, error)) return false;
      out.advise.sets = static_cast<int>(sets);
    } else if (is_advise && key == "seed") {
      if (!value.is_number()) return fail(error, "\"seed\" must be a number");
      try {
        out.advise.seed = value.as_uint64();
      } catch (const PreconditionError&) {
        return fail(error, "\"seed\" must be an unsigned integer");
      }
    } else {
      return fail(error, "unknown field \"" + key + "\" for type \"" +
                             to_string(out.type) + "\"");
    }
  }
  if (is_check && !have_streams) {
    return fail(error, "\"streams\" is required for type \"" +
                           std::string(to_string(out.type)) + "\"");
  }
  return true;
}

std::string cache_key(const Request& request) {
  switch (request.type) {
    case RequestType::kPing:
    case RequestType::kStats:
      return {};
    case RequestType::kCheck:
    case RequestType::kFaultcheck: {
      // json_number canonicalizes spelled-out numbers ("1e2" == "100").
      std::string key = to_string(request.type);
      key += "|p=" + request.check.protocol;
      key += "|bw=" + obs::json_number(request.check.bandwidth_mbps);
      if (request.type == RequestType::kFaultcheck) {
        key += "|noise=" + obs::json_number(request.check.noise_ms);
      }
      for (const auto& s : request.check.set.streams()) {
        key += '|';
        key += std::to_string(s.station);
        key += ':';
        key += obs::json_number(s.period);
        key += ':';
        key += obs::json_number(s.payload_bits);
        key += ':';
        key += obs::json_number(s.relative_deadline);
      }
      return key;
    }
    case RequestType::kAdvise: {
      std::string key = "advise";
      key += "|n=" + std::to_string(request.advise.stations);
      key += "|mp=" + obs::json_number(request.advise.mean_period_ms);
      key += "|pr=" + obs::json_number(request.advise.period_ratio);
      key += "|sets=" + std::to_string(request.advise.sets);
      key += "|seed=" + std::to_string(request.advise.seed);
      key += "|bw=";
      for (double bw : request.advise.bandwidths_mbps) {
        key += obs::json_number(bw) + ",";
      }
      return key;
    }
  }
  return {};
}

std::string success_response(std::string_view id_token, RequestType type,
                             bool cached, std::string_view result_json) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_object();
  w.key("schema").value_string(kServeSchema);
  w.key("id").value_raw(id_token);
  w.key("type").value_string(to_string(type));
  w.key("status").value_int(200);
  w.key("cached").value_bool(cached);
  w.key("result").value_raw(result_json);
  w.end_object();
  return os.str();
}

std::string error_response(std::string_view id_token, int status,
                           std::string_view error) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_object();
  w.key("schema").value_string(kServeSchema);
  w.key("id").value_raw(id_token.empty() ? "null" : id_token);
  w.key("status").value_int(status);
  w.key("error").value_string(error);
  w.end_object();
  return os.str();
}

std::string parse_error_response(std::size_t offset, std::string_view error) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_object();
  w.key("schema").value_string(kServeSchema);
  w.key("id").value_null();
  w.key("status").value_int(400);
  w.key("error").value_string(error);
  w.key("offset").value_uint(offset);
  w.end_object();
  return os.str();
}

std::string rate_limited_response(std::string_view id_token,
                                  std::uint64_t retry_after_ns) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_object();
  w.key("schema").value_string(kServeSchema);
  w.key("id").value_raw(id_token.empty() ? "null" : id_token);
  w.key("status").value_int(429);
  w.key("error").value_string("rate limit exceeded");
  w.key("retry_after_ms")
      .value_number(static_cast<double>(retry_after_ns) / 1e6);
  w.end_object();
  return os.str();
}

std::string timeout_response(std::string_view id_token, double elapsed_ms) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_object();
  w.key("schema").value_string(kServeSchema);
  w.key("id").value_raw(id_token.empty() ? "null" : id_token);
  w.key("status").value_int(504);
  w.key("error").value_string("deadline exceeded");
  w.key("elapsed_ms").value_number(elapsed_ms);
  w.end_object();
  return os.str();
}

std::string shed_response(std::string_view id_token,
                          std::uint64_t retry_after_ns) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.set_strict(true);
  w.begin_object();
  w.key("schema").value_string(kServeSchema);
  w.key("id").value_raw(id_token.empty() ? "null" : id_token);
  w.key("status").value_int(503);
  w.key("error").value_string("server overloaded, request shed");
  w.key("retry_after_ms")
      .value_number(static_cast<double>(retry_after_ns) / 1e6);
  w.end_object();
  return os.str();
}

}  // namespace tokenring::serve
