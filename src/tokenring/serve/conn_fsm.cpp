#include "tokenring/serve/conn_fsm.hpp"

#include <cerrno>
#include <utility>

#include "tokenring/serve/wire.hpp"

namespace tokenring::serve {

ConnFsm::ConnFsm(ByteIo& io, const ConnectionLimits& limits, std::string peer)
    : io_(io), limits_(limits), peer_(std::move(peer)) {}

void ConnFsm::on_readable(const Submit& submit) {
  if (state_ != State::kReading) return;
  char chunk[16384];
  for (;;) {
    int err = 0;
    const ssize_t n = io_.recv_some(chunk, sizeof(chunk), err);
    if (n > 0) {
      bytes_received_ += static_cast<std::uint64_t>(n);
      buffer_.append(chunk, static_cast<std::size_t>(n));
      if (!split_lines(submit)) return;
      continue;
    }
    if (n == 0) {
      // Orderly EOF. A trailing fragment without its newline is
      // unanswerable (the request never completed); drop it.
      buffer_.clear();
      state_ = State::kDraining;
      end_ = ConnectionEnd::kPeerClosed;
      maybe_finish();
      return;
    }
    if (err == EINTR) continue;
    if (err == EAGAIN || err == EWOULDBLOCK) return;  // edge exhausted
    abort_close(ConnectionEnd::kReadError);
    return;
  }
}

bool ConnFsm::split_lines(const Submit& submit) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = buffer_.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(buffer_.data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = nl + 1;
    if (line.empty()) continue;
    if (line.size() > limits_.max_line) {
      begin_oversized();
      return false;
    }
    const std::uint64_t slot = next_slot_++;
    slots_.push_back(Slot{});
    submit(line, slot);
    // submit may have completed inline and aborted the connection (write
    // error while flushing is impossible here — we never flush inside
    // complete — but an abort via expire_* from a re-entrant owner is
    // conceivable); stop cleanly if so.
    if (state_ == State::kClosed) return false;
  }
  buffer_.erase(0, start);

  // A line that keeps growing without a newline cannot be resynchronized;
  // answer once and hang up rather than buffering unboundedly.
  if (buffer_.size() > limits_.max_line) {
    begin_oversized();
    return false;
  }
  return true;
}

void ConnFsm::begin_oversized() {
  buffer_.clear();
  state_ = State::kDraining;
  end_ = ConnectionEnd::kOversized;
  // The 413 takes a slot like any response, so it is released to the
  // byte stream only after every earlier pipelined answer — exactly the
  // order the blocking loop produced.
  const std::uint64_t slot = next_slot_++;
  slots_.push_back(Slot{});
  complete(slot, error_response(
                     "", 413,
                     "request line exceeds " +
                         std::to_string(limits_.max_line) + " bytes"));
}

void ConnFsm::complete(std::uint64_t slot, std::string&& response) {
  if (state_ == State::kClosed) return;  // aborted; response has no home
  if (slot < first_slot_) return;        // stale (already released/aborted)
  const std::uint64_t idx = slot - first_slot_;
  if (idx >= slots_.size()) return;
  Slot& s = slots_[static_cast<std::size_t>(idx)];
  s.ready = true;
  s.response = std::move(response);
  release_ready_prefix();
  maybe_finish();
}

void ConnFsm::release_ready_prefix() {
  while (!slots_.empty() && slots_.front().ready) {
    out_ += slots_.front().response;
    out_.push_back('\n');
    slots_.pop_front();
    ++first_slot_;
  }
}

void ConnFsm::on_writable() {
  while (out_pos_ < out_.size()) {
    int err = 0;
    const ssize_t n =
        io_.send_some(out_.data() + out_pos_, out_.size() - out_pos_, err);
    if (n > 0) {
      out_pos_ += static_cast<std::size_t>(n);
      bytes_sent_ += static_cast<std::uint64_t>(n);
      continue;
    }
    if (n < 0 && err == EINTR) continue;
    if (n < 0 && (err == EAGAIN || err == EWOULDBLOCK)) {
      // Kernel buffer full: compact the flushed prefix so a slow reader
      // cannot pin an ever-growing buffer, then wait for EPOLLOUT.
      if (out_pos_ > (1u << 16)) {
        out_.erase(0, out_pos_);
        out_pos_ = 0;
      }
      return;
    }
    abort_close(ConnectionEnd::kWriteError);
    return;
  }
  out_.clear();
  out_pos_ = 0;
  maybe_finish();
}

void ConnFsm::expire_idle() {
  if (state_ == State::kClosed) return;
  // Matches the blocking loop: an idle timeout sends nothing.
  abort_close(ConnectionEnd::kIdleTimeout);
}

void ConnFsm::expire_write() {
  if (state_ == State::kClosed) return;
  abort_close(ConnectionEnd::kWriteTimeout);
}

void ConnFsm::maybe_finish() {
  if (state_ != State::kDraining) return;
  if (!slots_.empty() || wants_write()) return;
  state_ = State::kClosed;
  io_.shutdown_both();
  note_connection_end(end_);
}

void ConnFsm::abort_close(ConnectionEnd end) {
  state_ = State::kClosed;
  end_ = end;
  out_.clear();
  out_pos_ = 0;
  slots_.clear();
  first_slot_ = next_slot_;  // stale complete() calls become no-ops
  buffer_.clear();
  io_.shutdown_both();
  note_connection_end(end_);
}

}  // namespace tokenring::serve
