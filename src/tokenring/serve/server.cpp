#include "tokenring/serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <utility>

#include "tokenring/exec/executor.hpp"
#include "tokenring/obs/registry.hpp"
#include "tokenring/serve/connection.hpp"
#include "tokenring/serve/transport.hpp"

namespace tokenring::serve {

namespace {

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Server::Server(const Options& options)
    : options_(options), engine_(std::make_unique<Engine>(options.engine)) {}

Server::~Server() {
  if (started_) {
    request_stop();
    wait();
  }
  close_quietly(listen_fd_);
  close_quietly(stop_pipe_[0]);
  close_quietly(stop_pipe_[1]);
}

bool Server::start(std::string& error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    error = "invalid host address: " + options_.host;
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    error = "bind " + options_.host + ":" + std::to_string(options_.port) +
            ": " + std::strerror(errno);
    close_quietly(listen_fd_);
    return false;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    error = std::string("listen: ") + std::strerror(errno);
    close_quietly(listen_fd_);
    return false;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (::pipe(stop_pipe_) != 0) {
    error = std::string("pipe: ") + std::strerror(errno);
    close_quietly(listen_fd_);
    return false;
  }

  if (options_.front_end == FrontEnd::kReactor) {
    static const obs::Gauge shard_count("serve.reactor.count");
    const std::size_t n =
        options_.reactors > 0 ? options_.reactors : exec::default_jobs();
    Reactor::Options ropts;
    ropts.idle_timeout_ms = options_.idle_timeout_ms;
    ropts.write_timeout_ms = options_.write_timeout_ms;
    ropts.max_line = options_.engine.max_request_bytes;
    for (std::size_t i = 0; i < n; ++i) {
      reactors_.push_back(std::make_unique<Reactor>(*engine_, ropts));
      if (!reactors_.back()->start(error)) {
        reactors_.clear();
        close_quietly(listen_fd_);
        close_quietly(stop_pipe_[0]);
        close_quietly(stop_pipe_[1]);
        return false;
      }
    }
    shard_count.record(n);
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
  return true;
}

void Server::request_stop() {
  if (stop_pipe_[1] >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::wait() {
  if (!started_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  if (!reactors_.empty()) {
    // Each shard half-closes its connections, answers what was buffered
    // or in flight, and exits once empty.
    for (auto& reactor : reactors_) reactor->begin_drain();
    for (auto& reactor : reactors_) reactor->join();
  }
  // Threaded mode: half-close every connection so readers see EOF once
  // they have consumed what the client already sent, answer it, and exit.
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (Connection& c : connections_) {
      if (c.fd >= 0) ::shutdown(c.fd, SHUT_RD);
    }
  }
  for (;;) {
    Connection victim;
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) break;
      victim = std::move(connections_.back());
      connections_.pop_back();
    }
    if (victim.thread.joinable()) victim.thread.join();
    close_quietly(victim.fd);
  }
  engine_->drain();
  started_ = false;
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {stop_pipe_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) {
      // request_stop(). The kernel may hold handshakes no accept() has
      // collected yet; that peer's requests are already on the wire, and
      // closing the listen socket would RST them unanswered. Adopt the
      // queue (nonblocking, bounded by the backlog so a client that keeps
      // connecting cannot hold shutdown open) and let the drain answer.
      const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
      if (flags >= 0) ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);
      for (int i = 0; i < options_.backlog; ++i) {
        if (!accept_and_dispatch()) break;
      }
      return;
    }
    if ((fds[0].revents & POLLIN) == 0) continue;
    accept_and_dispatch();
  }
}

bool Server::accept_and_dispatch() {
  static const obs::Counter accepted("serve.connections");
  static const obs::Counter overflows("serve.accept.overflows");
  sockaddr_in peer{};
  socklen_t peer_len = sizeof(peer);
  const int fd = ::accept(listen_fd_, reinterpret_cast<sockaddr*>(&peer),
                          &peer_len);
  // accept() failures never kill the listener: EINTR (stray signal)
  // and ECONNABORTED (peer vanished between SYN and accept) are
  // routine, and anything else is at worst a transient resource limit
  // that the next poll round retries.
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      // fd or buffer exhaustion: the burst outran our limits. Counted
      // so operators can see refused accepts in stats.
      overflows.add();
    }
    return true;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  accepted.add();

  char ip[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
  const std::string peer_id = ip;  // one rate-limit bucket per peer host

  if (!reactors_.empty()) {
    reactors_[next_reactor_]->add_connection(fd, peer_id);
    next_reactor_ = (next_reactor_ + 1) % reactors_.size();
    return true;
  }

  std::lock_guard<std::mutex> lock(connections_mutex_);
  Connection c;
  c.fd = fd;
  c.thread = std::thread(
      [this, fd, peer_id] { serve_connection(fd, peer_id); });
  connections_.push_back(std::move(c));
  return true;
}

void Server::serve_connection(int fd, const std::string& peer) {
  SocketIo io(fd);
  Transport transport(io);
  ConnectionLimits limits;
  limits.max_line = options_.engine.max_request_bytes;
  limits.idle_timeout_ms = options_.idle_timeout_ms;
  limits.write_timeout_ms = options_.write_timeout_ms;
  // During graceful shutdown wait() half-closes the socket; the read side
  // then reports EOF once the client's buffered lines are consumed, so
  // the shared loop drains and answers them before exiting.
  run_connection(
      transport,
      [this](std::string_view line, const std::string& who) {
        return engine_->handle_line(line, who);
      },
      limits, peer);
}

}  // namespace tokenring::serve
