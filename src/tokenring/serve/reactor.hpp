// One shard of the event-driven serve front end.
//
// A Reactor owns an epoll instance, an eventfd wakeup, a timer wheel, and
// the connections the accept loop assigned to it (round-robin). All
// connection state is touched only from the reactor's own event-loop
// thread — there is no per-connection locking anywhere:
//
//   * The accept loop hands new fds over through a mutex-guarded inbox
//     and rings the eventfd.
//   * Compute finishes on a batcher pool thread; the engine completion
//     posts the response into the same inbox (keyed by (fd, generation)
//     so a response for a connection that died in the meantime is
//     dropped, never delivered to an fd the kernel reused), and rings the
//     eventfd. Completions that happen to land on the event-loop thread
//     itself (inline refusals, cache hits) skip the inbox entirely.
//   * Idle and write deadlines live in the timer wheel; epoll_wait's
//     timeout is one wheel tick while any timer is armed, infinite
//     otherwise — so a reactor with only parked idle connections costs a
//     bounded ~100 wakeups/s, not one thread stack and scheduler slot
//     per connection.
//
// Sockets are registered edge-triggered (EPOLLIN|EPOLLOUT|EPOLLET), so
// there is no epoll_ctl churn on the hot path; the ConnFsm pumps reads
// and writes to EAGAIN as edge-triggering requires. Graceful drain mirrors
// the threaded front end: begin_drain() half-closes every connection
// (shutdown(SHUT_RD)), the FSMs consume what the kernel already buffered,
// answer it, flush, and the loop exits once the shard is empty.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "tokenring/serve/conn_fsm.hpp"
#include "tokenring/serve/engine.hpp"
#include "tokenring/serve/timer_wheel.hpp"
#include "tokenring/serve/transport.hpp"

namespace tokenring::serve {

class Reactor {
 public:
  struct Options {
    /// Same meaning as Server::Options (<= 0 disables the timeout).
    int idle_timeout_ms = 30000;
    int write_timeout_ms = 10000;
    /// Request lines longer than this get the 413-then-close treatment.
    std::size_t max_line = 1 << 20;
  };

  Reactor(Engine& engine, const Options& options);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Create the epoll/eventfd plumbing and start the event loop.
  bool start(std::string& error);

  /// Adopt a connected socket (the reactor owns and closes it). Thread
  /// safe; called from the accept loop.
  void add_connection(int fd, std::string peer);

  /// Begin graceful drain: half-close every connection, answer what is
  /// already buffered or in flight, exit the loop when the shard is
  /// empty. Thread safe.
  void begin_drain();

  /// Join the event loop (begin_drain() must have been called, or no
  /// connections may remain pending forever).
  void join();

 private:
  struct Conn {
    int fd;
    std::uint64_t gen;
    SocketIo io;
    ConnFsm fsm;
    TimerWheel::Id idle_timer = 0;
    TimerWheel::Id write_timer = 0;
    bool idle_armed = false;
    bool write_armed = false;
    /// Progress snapshots the timer policy compares against.
    std::uint64_t last_activity_ns = 0;
    std::uint64_t seen_received = 0;
    std::uint64_t sent_at_write_arm = 0;

    Conn(int fd_in, std::uint64_t gen_in, const ConnectionLimits& limits,
         std::string peer)
        : fd(fd_in), gen(gen_in), io(fd_in),
          fsm(io, limits, std::move(peer)) {}
  };

  struct PendingConn {
    int fd;
    std::string peer;
  };

  struct PendingCompletion {
    int fd;
    std::uint64_t gen;
    std::uint64_t slot;
    std::string response;
  };

  void loop();
  void ring();  // eventfd wakeup
  Conn* find(int fd);
  void pump_read(Conn& conn);
  void submit_line(Conn& conn, std::string_view line, std::uint64_t slot);
  void deliver(int fd, std::uint64_t gen, std::uint64_t slot,
               std::string&& response, std::uint64_t now_ns);
  void process_inbox(std::uint64_t now_ns, std::vector<int>& touched);
  void adopt(PendingConn&& pending, std::uint64_t now_ns,
             std::vector<int>& touched);
  void enter_drain(std::uint64_t now_ns, std::vector<int>& touched);
  /// Flush, update timers, tear down if finished. Safe to call twice per
  /// round for the same fd (second call finds the conn gone or idempotent
  /// state).
  void finalize(int fd, std::uint64_t now_ns);
  void handle_timer(const TimerWheel::Expired& fired, std::uint64_t now_ns);
  void teardown(Conn& conn);

  Engine& engine_;
  Options options_;
  ConnectionLimits limits_;

  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread thread_;
  std::thread::id loop_thread_id_;

  TimerWheel wheel_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_gen_ = 1;
  std::uint64_t now_ns_ = 0;  // refreshed each loop round
  bool draining_ = false;

  std::mutex inbox_mutex_;
  std::vector<PendingConn> inbox_conns_;
  std::vector<PendingCompletion> inbox_completions_;
  bool drain_requested_ = false;
};

}  // namespace tokenring::serve
