#include "tokenring/serve/batcher.hpp"

#include <utility>
#include <vector>

#include "tokenring/common/checks.hpp"
#include "tokenring/obs/registry.hpp"

namespace tokenring::serve {

Batcher::Batcher(const exec::Executor& executor, std::size_t max_group,
                 std::size_t max_queue)
    : executor_(executor), max_group_(max_group), max_queue_(max_queue) {
  TR_EXPECTS_MSG(max_group_ > 0, "batch group size must be >= 1");
  TR_EXPECTS_MSG(max_queue_ > 0, "batch queue capacity must be >= 1");
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

Batcher::~Batcher() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  dispatcher_.join();
}

std::future<std::string> Batcher::submit(std::function<std::string()> job) {
  TR_EXPECTS(job != nullptr);
  Job item;
  item.fn = std::move(job);
  auto future = item.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [this] { return queue_.size() < max_queue_ || stopping_; });
    TR_EXPECTS_MSG(!stopping_, "submit on a stopping Batcher");
    queue_.push_back(std::move(item));
  }
  not_empty_.notify_one();
  return future;
}

std::optional<std::future<std::string>> Batcher::try_submit(
    std::function<std::string()> job) {
  TR_EXPECTS(job != nullptr);
  Job item;
  item.fn = std::move(job);
  auto future = item.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    TR_EXPECTS_MSG(!stopping_, "try_submit on a stopping Batcher");
    if (queue_.size() >= max_queue_) return std::nullopt;
    queue_.push_back(std::move(item));
    static const obs::Gauge peak("serve.batch.peak_depth");
    peak.record(queue_.size() + in_flight_);
  }
  not_empty_.notify_one();
  return future;
}

std::size_t Batcher::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() + in_flight_;
}

void Batcher::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void Batcher::dispatch_loop() {
  static const obs::Counter groups("serve.batch.groups");
  static const obs::Counter jobs("serve.batch.jobs");
  static const obs::Gauge widest("serve.batch.widest_group");

  while (true) {
    std::vector<Job> group;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;
      const std::size_t take = std::min(queue_.size(), max_group_);
      group.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        group.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      in_flight_ = group.size();
    }
    not_full_.notify_all();
    groups.add();
    jobs.add(group.size());
    widest.record(group.size());

    // Futures resolve per job as each lane finishes, so a fast query in a
    // group never waits for the group's slowest member.
    executor_.parallel_for(group.size(), [&group](std::size_t i) {
      try {
        group[i].promise.set_value(group[i].fn());
      } catch (...) {
        group[i].promise.set_exception(std::current_exception());
      }
    });

    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_ = 0;
    }
    idle_.notify_all();
  }
}

}  // namespace tokenring::serve
