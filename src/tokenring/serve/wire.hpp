// Wire format of the admission-control service (`tokenring.serve/1`).
//
// The daemon speaks line-delimited JSON: one request object per line in,
// one response object per line out, in request order per connection. The
// schema string follows the obs/ manifest convention
// (`tokenring.run_manifest/1`): bump the suffix on an incompatible change.
//
// Request:
//   {"type": "check" | "faultcheck" | "advise" | "ping" | "stats",
//    "id": <any scalar, echoed verbatim>,        // optional
//    "client": "ops-console",                    // optional rate-limit key
//    ...type-specific fields}
//
// Response envelope:
//   {"schema": "tokenring.serve/1", "id": <echo>, "type": "check",
//    "status": 200, "cached": false, "result": {...}}
// or, on failure,
//   {"schema": "tokenring.serve/1", "id": <echo>, "status": 400,
//    "error": "...", "offset": 17}               // offset: parse errors
//   {"schema": "tokenring.serve/1", "id": <echo>, "status": 429,
//    "error": "...", "retry_after_ms": 12.5}
//
// Parsing is strict: unknown fields are rejected with a 400 naming the
// field, so a typo'd "bandwith_mbps" fails loudly instead of silently
// running with the default.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tokenring/msg/message_set.hpp"
#include "tokenring/obs/json.hpp"

namespace tokenring::serve {

inline constexpr const char* kServeSchema = "tokenring.serve/1";

enum class RequestType { kPing, kStats, kCheck, kFaultcheck, kAdvise };

const char* to_string(RequestType type);

/// check / faultcheck: one explicit scenario against one protocol.
struct CheckQuery {
  /// Validated protocol name: "fddi" | "ieee8025" | "modified8025".
  std::string protocol = "fddi";
  double bandwidth_mbps = 100.0;
  msg::MessageSet set;
  /// faultcheck only: noise burst duration.
  double noise_ms = 1.0;
};

/// advise: a traffic profile and candidate bandwidths, mirroring the
/// `tokenring_tool advise` flags.
struct AdviseQuery {
  int stations = 100;
  double mean_period_ms = 100.0;
  double period_ratio = 10.0;
  std::vector<double> bandwidths_mbps = {4.0, 16.0, 100.0, 622.0};
  int sets = 50;
  std::uint64_t seed = 1;
};

struct Request {
  RequestType type = RequestType::kPing;
  /// Raw JSON token of the request's "id" member ("null" when absent);
  /// echoed verbatim so numeric ids round-trip without a double trip.
  std::string id_token = "null";
  /// Rate-limit key; empty means "use the connection's fallback id".
  std::string client;
  /// Compute types only: total time the client is willing to wait for
  /// this answer [milliseconds]; 0 = no deadline. A request whose
  /// deadline expires before its compute starts is answered with a 504
  /// instead of burning a Monte Carlo sweep nobody is waiting for.
  /// Deliberately NOT part of the cache key: the same query with a
  /// different patience is still the same query.
  double deadline_ms = 0.0;
  CheckQuery check;    // meaningful for kCheck / kFaultcheck
  AdviseQuery advise;  // meaningful for kAdvise
};

/// Interpret a parsed JSON document as a request. On failure returns
/// false and sets `error` to a message naming the offending field; `out`
/// still carries the id token (if one was readable) so the error response
/// can echo it.
bool parse_request(const obs::JsonValue& doc, Request& out,
                   std::string& error);

/// Canonical cache key for a compute request: two requests that differ
/// only in spelling (field order, "100" vs 1e2, explicit defaults) map to
/// the same key. Empty for ping/stats, which are never cached.
std::string cache_key(const Request& request);

/// Wrap a rendered result object into the success envelope. `result_json`
/// must be a complete JSON value (the builders below produce one).
std::string success_response(std::string_view id_token, RequestType type,
                             bool cached, std::string_view result_json);

/// Failure envelope; status is the HTTP-style code (400, 413, 429, 500).
std::string error_response(std::string_view id_token, int status,
                           std::string_view error);

/// 400 for a line that is not valid JSON, pointing at the byte offset
/// where parsing stopped.
std::string parse_error_response(std::size_t offset, std::string_view error);

/// 429 with the token bucket's back-off hint.
std::string rate_limited_response(std::string_view id_token,
                                  std::uint64_t retry_after_ns);

/// 504: the request's own deadline_ms expired before (or while) its
/// compute ran; elapsed_ms reports how long it actually waited.
std::string timeout_response(std::string_view id_token, double elapsed_ms);

/// 503: admission queue beyond the high-water mark, request shed before
/// any compute. retry_after_ms estimates when the backlog will clear.
std::string shed_response(std::string_view id_token,
                          std::uint64_t retry_after_ns);

}  // namespace tokenring::serve
