#include "tokenring/serve/connection.hpp"

#include <string>

#include "tokenring/obs/registry.hpp"
#include "tokenring/serve/wire.hpp"

namespace tokenring::serve {

const char* to_string(ConnectionEnd end) {
  switch (end) {
    case ConnectionEnd::kPeerClosed:
      return "peer_closed";
    case ConnectionEnd::kIdleTimeout:
      return "idle_timeout";
    case ConnectionEnd::kOversized:
      return "oversized";
    case ConnectionEnd::kReadError:
      return "read_error";
    case ConnectionEnd::kWriteError:
      return "write_error";
    case ConnectionEnd::kWriteTimeout:
      return "write_timeout";
  }
  return "?";
}

void note_connection_end(ConnectionEnd end) {
  static const obs::Counter idle("serve.conn.idle_timeouts");
  static const obs::Counter oversized("serve.conn.oversized");
  static const obs::Counter read_errors("serve.conn.read_errors");
  static const obs::Counter write_errors("serve.conn.write_errors");
  static const obs::Counter write_timeouts("serve.conn.write_timeouts");
  switch (end) {
    case ConnectionEnd::kIdleTimeout:
      idle.add();
      break;
    case ConnectionEnd::kOversized:
      oversized.add();
      break;
    case ConnectionEnd::kReadError:
      read_errors.add();
      break;
    case ConnectionEnd::kWriteError:
      write_errors.add();
      break;
    case ConnectionEnd::kWriteTimeout:
      write_timeouts.add();
      break;
    case ConnectionEnd::kPeerClosed:
      break;
  }
}

namespace {

ConnectionEnd finish(Transport& transport, ConnectionEnd end) {
  note_connection_end(end);
  transport.shutdown_both();
  return end;
}

}  // namespace

ConnectionEnd run_connection(Transport& transport, const LineHandler& handler,
                             const ConnectionLimits& limits,
                             const std::string& peer) {
  const int idle_ms = limits.idle_timeout_ms > 0 ? limits.idle_timeout_ms : -1;
  const int write_ms =
      limits.write_timeout_ms > 0 ? limits.write_timeout_ms : -1;

  const auto write_line = [&](std::string line) -> IoStatus {
    line.push_back('\n');
    return transport.write_all(line.data(), line.size(), write_ms);
  };
  const auto answer_413 = [&] {
    // Best effort: the peer may already be gone, and we are closing
    // either way.
    (void)write_line(error_response(
        "", 413,
        "request line exceeds " + std::to_string(limits.max_line) + " bytes"));
  };

  std::string buffer;
  char chunk[16384];
  for (;;) {
    const IoResult r = transport.read_some(chunk, sizeof(chunk), idle_ms);
    if (r.status == IoStatus::kTimeout) {
      return finish(transport, ConnectionEnd::kIdleTimeout);
    }
    if (r.status == IoStatus::kError) {
      return finish(transport, ConnectionEnd::kReadError);
    }
    if (r.status == IoStatus::kEof) {
      // A trailing fragment without its newline is unanswerable (the
      // request never completed); drop it.
      return finish(transport, ConnectionEnd::kPeerClosed);
    }
    buffer.append(chunk, r.bytes);

    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string_view line(buffer.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = nl + 1;
      if (line.empty()) continue;
      if (line.size() > limits.max_line) {
        answer_413();
        return finish(transport, ConnectionEnd::kOversized);
      }
      const IoStatus wrote = write_line(handler(line, peer));
      if (wrote == IoStatus::kTimeout) {
        return finish(transport, ConnectionEnd::kWriteTimeout);
      }
      if (wrote != IoStatus::kOk) {
        return finish(transport, ConnectionEnd::kWriteError);
      }
    }
    buffer.erase(0, start);

    // A line that keeps growing without a newline cannot be
    // resynchronized; answer once and hang up rather than buffering
    // unboundedly.
    if (buffer.size() > limits.max_line) {
      answer_413();
      return finish(transport, ConnectionEnd::kOversized);
    }
  }
}

}  // namespace tokenring::serve
