// Fault-injectable byte transport for the admission-control server.
//
// The server's I/O is split in two layers so every retry loop is testable
// without a kernel in the way:
//
//   ByteIo     — syscall-shaped primitive interface (recv/send/poll with
//                errno-style failures). SocketIo is the production
//                implementation over a non-blocking TCP fd; FaultyIo is a
//                deterministic in-memory double that injects short reads
//                and writes, EINTR storms, mid-frame disconnects, byte
//                corruption, and stalls from a seeded TransportFaultPlan
//                (the fault/-style idiom: generate the whole failure
//                schedule up front from a seed, then replay it).
//   Transport  — the EINTR-safe, deadline-aware read/write loops the
//                connection handler actually calls. There is exactly one
//                copy of this logic, shared by production and tests, so a
//                FaultyIo EINTR storm exercises the very loops a stray
//                signal would hit in production.
//
// Timeouts are computed against the injected clock: a poll interrupted by
// EINTR re-arms with the *remaining* budget, never the full one, so a
// signal storm cannot extend an idle deadline.

#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "tokenring/common/rng.hpp"

namespace tokenring::serve {

/// Outcome of a Transport-level operation.
enum class IoStatus { kOk, kEof, kTimeout, kError };

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

/// Syscall-shaped byte I/O. Implementations mirror POSIX semantics:
/// recv/send return >0 on progress, 0 for EOF (recv only), and -1 with
/// `err` set to an errno value (EINTR, EAGAIN, ECONNRESET, EPIPE, ...).
/// wait() mirrors poll(): 1 ready, 0 timed out, -1 with `err` (EINTR).
class ByteIo {
 public:
  virtual ~ByteIo() = default;

  virtual ssize_t recv_some(char* data, std::size_t size, int& err) = 0;
  virtual ssize_t send_some(const char* data, std::size_t size, int& err) = 0;
  /// Wait until the stream is readable (`for_write` false) or writable
  /// (true). `timeout_ms` < 0 waits forever.
  virtual int wait(bool for_write, int timeout_ms, int& err) = 0;
  /// Hard-close both directions (no further reads or writes succeed).
  virtual void shutdown_both() = 0;
};

/// Production ByteIo over a connected TCP socket. The constructor switches
/// the fd to non-blocking mode so write timeouts are enforceable (a
/// blocking send() to a stalled peer would park the thread forever). Does
/// not own the fd; the accept loop closes it after the connection thread
/// exits.
class SocketIo final : public ByteIo {
 public:
  explicit SocketIo(int fd);

  ssize_t recv_some(char* data, std::size_t size, int& err) override;
  ssize_t send_some(const char* data, std::size_t size, int& err) override;
  int wait(bool for_write, int timeout_ms, int& err) override;
  void shutdown_both() override;

 private:
  int fd_;
};

/// A deterministic schedule of transport misbehaviour, fixed up front
/// (seeded) so a failing run replays exactly. Byte positions are counted
/// over the whole connection, not per call.
struct TransportFaultPlan {
  static constexpr std::size_t kNever = std::numeric_limits<std::size_t>::max();

  /// Ceiling on bytes moved per recv/send call (0 = unlimited). With a
  /// seed, each call draws a size in [1, cap] instead of using the cap.
  std::size_t max_read_chunk = 0;
  std::size_t max_write_chunk = 0;
  /// EINTR failures injected before every recv/send/wait completes.
  std::uint32_t eintr_per_op = 0;
  /// Connection drops: reads fail with ECONNRESET once this many input
  /// bytes were delivered; writes fail with EPIPE after this many output
  /// bytes were accepted.
  std::size_t reset_read_after = kNever;
  std::size_t reset_write_after = kNever;
  /// Flip one bit of the input byte at this position (wire corruption).
  std::size_t corrupt_read_at = kNever;
  /// Every Nth read-side wait() reports a timeout instead of readiness
  /// (a stalled peer; 0 = never stalls).
  std::uint32_t stall_every = 0;
  /// Every Nth recv/send call fails with EAGAIN (0 = never). To the
  /// blocking Transport loops this is a spurious wakeup; to the reactor's
  /// ConnFsm it ends the current readiness edge, so tests can slice one
  /// frame across many on_readable()/on_writable() pumps.
  std::uint32_t eagain_every = 0;
  /// Seed for per-call chunk-size draws; 0 = use the caps verbatim.
  std::uint64_t seed = 0;

  /// A randomized-but-reproducible plan: seed k always yields plan k.
  /// Covers the whole fault menu across seeds (short reads/writes, EINTR
  /// storms, early resets, corruption) without any plan being so hostile
  /// that zero requests survive.
  static TransportFaultPlan random(std::uint64_t seed);
};

/// In-memory ByteIo double: `input` is the byte stream the simulated peer
/// sends; everything the server writes accumulates in output(). Faults are
/// injected per the plan. Single-threaded by design (drive it from one
/// test thread).
class FaultyIo final : public ByteIo {
 public:
  FaultyIo(std::string input, const TransportFaultPlan& plan);

  ssize_t recv_some(char* data, std::size_t size, int& err) override;
  ssize_t send_some(const char* data, std::size_t size, int& err) override;
  int wait(bool for_write, int timeout_ms, int& err) override;
  void shutdown_both() override;

  const std::string& output() const { return output_; }
  bool shutdown_called() const { return shutdown_; }
  /// EINTRs the Transport loops absorbed (test assertion hook).
  std::uint64_t eintr_injected() const { return eintr_injected_; }

 private:
  /// True once per op while the per-op EINTR budget lasts.
  bool inject_eintr(std::uint32_t& counter);
  std::size_t chunk_limit(std::size_t requested, std::size_t cap);

  std::string input_;
  std::string output_;
  TransportFaultPlan plan_;
  Rng rng_;
  std::size_t read_pos_ = 0;
  std::uint32_t pending_recv_eintr_ = 0;
  std::uint32_t pending_send_eintr_ = 0;
  std::uint32_t pending_wait_eintr_ = 0;
  std::uint32_t reads_waited_ = 0;
  std::uint32_t recvs_called_ = 0;
  std::uint32_t sends_called_ = 0;
  std::uint64_t eintr_injected_ = 0;
  bool shutdown_ = false;
};

/// The EINTR-safe, deadline-aware I/O loops over a ByteIo. This is the
/// only place recv/send/wait results are interpreted; the connection
/// handler works purely in IoStatus terms.
class Transport {
 public:
  /// `clock` returns monotonic nanoseconds (tests inject a scripted one).
  explicit Transport(ByteIo& io,
                     std::function<std::uint64_t()> clock = {});

  /// Read up to `size` bytes, waiting at most `timeout_ms` (< 0 = forever)
  /// for the first byte. EINTR — from wait() or recv() — retries with the
  /// remaining budget.
  IoResult read_some(char* data, std::size_t size, int timeout_ms);

  /// Write the whole buffer, riding out partial writes, EAGAIN, and
  /// EINTR. `timeout_ms` (< 0 = forever) bounds the total call, so a
  /// stalled peer cannot park the thread (slow-loris on the write side).
  IoStatus write_all(const char* data, std::size_t size, int timeout_ms);

  void shutdown_both() { io_.shutdown_both(); }

 private:
  /// Remaining budget in ms against `deadline_ns`; -1 when untimed.
  int remaining_ms(bool timed, std::uint64_t deadline_ns) const;

  ByteIo& io_;
  std::function<std::uint64_t()> clock_;
};

}  // namespace tokenring::serve
