// Non-blocking per-connection state machine for the reactor front end.
//
// run_connection() (connection.hpp) is a blocking loop: it owns a thread,
// so it can wait inside read_some() and write a response before reading
// the next line. A reactor owns thousands of connections per thread, so
// the same framing rules are re-expressed here as a resumable machine
// driven by readiness events:
//
//   on_readable()  — pump recv until EAGAIN/EOF, split complete lines,
//                    hand each to the submit callback with a response slot
//   complete()     — a response landed (inline or from a pool thread via
//                    the reactor's wakeup queue); buffered for writing
//   on_writable()  — flush the out-buffer until EAGAIN or empty
//
// The framing contract is bit-identical to the blocking loop: lines split
// on '\n' with a trailing '\r' stripped, empty lines ignored, oversized
// lines (complete or still-growing) answered with one 413 and then the
// connection closes, a trailing fragment at EOF is dropped unanswered.
// Pipelining keeps strict request order even though compute may finish
// out of order: each submitted line gets a monotonically increasing slot,
// and responses are released to the out-buffer only when every earlier
// slot has been released — so the byte stream a client sees is the same
// one the thread-per-connection server would have produced.
//
// The machine is transport-agnostic over ByteIo (never calls wait()), so
// FaultyIo fault plans — short reads, EINTR storms, injected EAGAIN
// readiness edges, resets — drive it in tests exactly like the kernel
// drives it in production. Timeouts live outside: the machine only
// exposes the bookkeeping (bytes moved, pending work) that the reactor's
// timer wheel needs to decide idle/write expiry.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>

#include "tokenring/serve/connection.hpp"
#include "tokenring/serve/transport.hpp"

namespace tokenring::serve {

class ConnFsm {
 public:
  /// Called for each complete request line (no newline, '\r' stripped).
  /// The callee must eventually call complete(slot, response) exactly
  /// once; calling it re-entrantly from inside submit is allowed.
  using Submit =
      std::function<void(std::string_view line, std::uint64_t slot)>;

  ConnFsm(ByteIo& io, const ConnectionLimits& limits, std::string peer);

  ConnFsm(const ConnFsm&) = delete;
  ConnFsm& operator=(const ConnFsm&) = delete;

  const std::string& peer() const { return peer_; }

  /// A readiness edge on the read side: pump until EAGAIN, EOF, or error.
  void on_readable(const Submit& submit);

  /// Deliver the response for `slot`. In-order ready responses move to
  /// the out-buffer; the owner should flush (on_writable) afterwards.
  /// Stale slots on an aborted connection are ignored.
  void complete(std::uint64_t slot, std::string&& response);

  /// A readiness edge on the write side (or "try to flush now").
  void on_writable();

  // Graceful drain needs no dedicated entry point: the owner calls
  // shutdown(SHUT_RD) on the fd and pumps on_readable — the kernel hands
  // over whatever the client already sent, then EOF, and the machine
  // answers the buffered lines before finishing (same contract as the
  // threaded server's wait()).

  /// Timer verdicts, decided by the owner's wheel.
  void expire_idle();
  void expire_write();

  /// Bytes still queued for the peer (flush wanted).
  bool wants_write() const { return out_pos_ < out_.size(); }
  /// Still accepting request bytes.
  bool reading() const { return state_ == State::kReading; }
  /// Responses not yet released (submitted or queued out of order).
  std::size_t pending() const { return slots_.size(); }
  /// Nothing in flight and nothing buffered: the idle timeout may apply.
  bool idle() const { return slots_.empty() && !wants_write(); }
  /// Fully over: the owner should deregister and close the fd.
  bool finished() const { return state_ == State::kClosed; }
  ConnectionEnd end() const { return end_; }

  /// Monotonic totals for the owner's timer bookkeeping: progress since
  /// the last check re-arms the corresponding deadline.
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  enum class State {
    kReading,   // accepting request bytes
    kDraining,  // no more reads; answering what is pending, then closing
    kClosed,    // done (orderly or aborted)
  };

  struct Slot {
    bool ready = false;
    std::string response;
  };

  /// Split buffer_ into complete lines and submit them. False when the
  /// connection stopped reading (oversized).
  bool split_lines(const Submit& submit);
  void begin_oversized();
  void release_ready_prefix();
  void maybe_finish();
  void abort_close(ConnectionEnd end);

  ByteIo& io_;
  ConnectionLimits limits_;
  std::string peer_;

  State state_ = State::kReading;
  ConnectionEnd end_ = ConnectionEnd::kPeerClosed;

  std::string buffer_;  // partial request line
  std::string out_;     // response bytes not yet accepted by the kernel
  std::size_t out_pos_ = 0;

  std::deque<Slot> slots_;
  std::uint64_t next_slot_ = 0;   // id assigned to the next submitted line
  std::uint64_t first_slot_ = 0;  // id of slots_.front()

  std::uint64_t bytes_received_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace tokenring::serve
